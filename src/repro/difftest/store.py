"""Persistent campaign checkpoints and shard merging.

A :class:`CampaignStore` is an append-only JSONL file: one header line
identifying the campaign (approach, budget, levels, compilers, seed,
shard), then one self-contained record per completed program.  The engine
appends a record the moment a program's matrix finishes, so a campaign
killed at program *k* resumes from *k* — the cheap generate stage replays
(restoring generator/feedback state) and only unfinished programs
recompute.

Every float crosses the file boundary as its IEEE-754 bit pattern
(16 hex digits via :func:`repro.fp.bits.double_to_hex`), never as a
decimal string, so NaNs, infinities, signed zeros and subnormals
round-trip bit-exactly and a resumed :class:`CampaignResult` is
byte-identical to an uninterrupted one.

A truncated final line — the signature of a crash mid-append — is
detected on open and the file is truncated back to the last complete
record; everything before it is trusted, everything after recomputed.

:func:`merge_shards` is the other half of ``--shard i/n``: it validates
that a set of disjoint shard results covers the full budget and splices
their outcomes back into index order, summing timing and dedup counters,
so the merged result is bit-identical to an unsharded run.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

from repro.difftest.record import CampaignResult, ComparisonRecord, ProgramOutcome
from repro.fp.bits import double_to_hex, hex_to_double
from repro.generation.program import GeneratedProgram
from repro.toolchains.optlevels import OptLevel

__all__ = [
    "CampaignStore",
    "CampaignStoreError",
    "load_result",
    "load_triggers",
    "merge_shards",
    "merge_shard_stores",
    "read_island_records",
    "tail_outcomes",
    "encode_outcome",
    "decode_outcome",
]

# Version history:
#
# * v1 — pre-vectorization compiler models; comparison rows carry no
#   structural ``tag`` field.
# * v2 — added the per-comparison structural ``tag`` (vector-reduction)
#   alongside the vectorizing toolchain pipelines.
# * v3 — the if-conversion (masked vectorization) tier: ``tag`` may now
#   also be ``masked-lane``, and the host/device pipelines if-convert, so
#   v3 campaigns compute different matrices than v2 ones.
# * v4 — island-model generation: the header gains ``islands`` and
#   ``merge_every`` (0/0 when the campaign is not island-partitioned) and
#   files may carry ``island`` merge-point records between outcomes.  A
#   v3 header reads as islands=0/merge_every=0.  Later v4 writers add an
#   optional ``tiers`` header field when the campaign ran under a
#   non-default divergence-tier profile (see :mod:`repro.tiers`), in
#   which case rows may carry the newer registry tags (``vec-libm``,
#   ``mixed-precision``, ``masked-int-guard``); a header without the
#   field reads as ``tiers="baseline"``, whose rows — and bytes — are
#   identical to pre-registry v4 files.
#
# New checkpoints are written at the current version.  Older versions
# remain *readable* (``load_result`` / ``merge`` / ``triage`` — missing
# ``tag`` fields decode as None) and *resumable*: the stored outcomes are
# trusted as recorded, which is what an operator pointing ``--resume`` at
# a pre-existing nightly checkpoint asks for.  Opening a legacy file for
# resume upgrades its header to the current version (rows appended from
# that point on are computed by the current models, and the header names
# the newest writer); the retained legacy rows still describe the models
# of the version that wrote them — analyses mixing versions are comparing
# those models, not a bug in the store.
_FORMAT_VERSION = 4
_READABLE_VERSIONS = frozenset({1, 2, 3, _FORMAT_VERSION})

#: Optional header fields, with the value their absence implies: the v4
#: island fields (pre-v4 headers) and the divergence-tier profile
#: (written only when non-default, so baseline headers keep pre-registry
#: bytes).
_ISLAND_DEFAULTS = {"islands": 0, "merge_every": 0}
_HEADER_DEFAULTS = {**_ISLAND_DEFAULTS, "tiers": "baseline"}


class CampaignStoreError(ValueError):
    """The checkpoint file does not match the campaign being run."""


# -- bit-exact scalar encoding --------------------------------------------------


def _enc_float(v: float | None) -> str | None:
    return None if v is None else double_to_hex(v)


def _dec_float(s: str | None) -> float | None:
    return None if s is None else hex_to_double(s)


def _enc_input(v) -> dict:
    """One ``compute`` argument: int scalar, float scalar, or float array."""
    if isinstance(v, (tuple, list)):
        return {"a": [double_to_hex(float(x)) for x in v]}
    if isinstance(v, float):
        return {"f": double_to_hex(v)}
    if isinstance(v, int) and not isinstance(v, bool):
        return {"i": v}
    raise CampaignStoreError(f"unsupported input type {type(v).__name__}: {v!r}")


def _dec_input(d: dict):
    if "a" in d:
        return tuple(hex_to_double(x) for x in d["a"])
    if "f" in d:
        return hex_to_double(d["f"])
    if "i" in d:
        return d["i"]
    raise CampaignStoreError(f"unrecognized input encoding: {d!r}")


# -- outcome (de)serialization --------------------------------------------------


def encode_outcome(outcome: ProgramOutcome) -> dict:
    """One program's complete record as a JSON-safe dict."""
    return {
        "kind": "outcome",
        "index": outcome.index,
        "program": {
            "source": outcome.program.source,
            "inputs": [_enc_input(v) for v in outcome.program.inputs],
            "meta": outcome.program.meta,
        },
        "compiled": outcome.compiled,
        "ran": outcome.ran,
        "signatures": outcome.signatures,
        "values": {k: double_to_hex(v) for k, v in outcome.values.items()},
        "comparisons": [
            {
                "a": c.compiler_a,
                "b": c.compiler_b,
                "level": str(c.level),
                "consistent": c.consistent,
                "value_a": _enc_float(c.value_a),
                "value_b": _enc_float(c.value_b),
                "digit_diff": c.digit_diff,
                "tag": c.tag,
            }
            for c in outcome.comparisons
        ],
        "triggered": outcome.triggered,
    }


def decode_outcome(record: dict) -> ProgramOutcome:
    """Inverse of :func:`encode_outcome` (bit-exact)."""
    index = record["index"]
    prog = record["program"]
    program = GeneratedProgram(
        source=prog["source"],
        inputs=tuple(_dec_input(v) for v in prog["inputs"]),
        meta=dict(prog["meta"]),
    )
    outcome = ProgramOutcome(
        index=index,
        program=program,
        compiled=dict(record["compiled"]),
        ran=dict(record["ran"]),
        triggered=record["triggered"],
        signatures=dict(record["signatures"]),
        values={k: hex_to_double(v) for k, v in record["values"].items()},
    )
    outcome.comparisons = [
        ComparisonRecord(
            program_index=index,
            compiler_a=c["a"],
            compiler_b=c["b"],
            level=OptLevel(c["level"]),
            consistent=c["consistent"],
            value_a=_dec_float(c["value_a"]),
            value_b=_dec_float(c["value_b"]),
            digit_diff=c["digit_diff"],
            tag=c.get("tag"),
        )
        for c in record["comparisons"]
    ]
    return outcome


# -- the store -------------------------------------------------------------------


class CampaignStore:
    """Append-only JSONL checkpoint of one campaign (or one shard of one).

    Usage is mediated by the engine: :meth:`open` validates the header
    against the campaign about to run (writing it on first use) and
    returns the already-completed outcomes; :meth:`append` durably
    records one more.  A store file is self-describing — ``--resume`` on
    a different machine only needs the file and the same campaign
    invocation.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        #: ``island`` merge-point records found by :meth:`open` (file
        #: order), extended by :meth:`append_island` — the engine replays
        #: these into the island coordinator on ``--resume``.
        self.island_records: list[dict] = []

    def open(self, header: dict) -> dict[int, ProgramOutcome]:
        """Validate/initialize the file; return checkpointed outcomes."""
        expected = {"kind": "campaign", "version": _FORMAT_VERSION, **header}
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._write_line(expected, mode="w")
            return {}
        lines, good_bytes, total_bytes = self._read_complete_lines()
        if not lines:
            # A non-empty file with no decodable header is NOT ours to
            # reinitialize — --resume may have been pointed at the wrong
            # path, and overwriting would destroy it.
            raise CampaignStoreError(
                f"{self.path} exists but is not a campaign checkpoint "
                "(no decodable header line); refusing to overwrite — "
                "delete it or pass a different path"
            )
        stored_header = lines[0]
        legacy = stored_header != expected
        if legacy and not self._legacy_match(stored_header, expected):
            si, ei = self._identity(stored_header), self._identity(expected)
            fields = sorted(k for k in si | ei if si.get(k) != ei.get(k))
            if not fields:  # identities agree: an unreadable version is the cause
                fields = ["version"]
            raise CampaignStoreError(
                f"checkpoint {self.path} belongs to a different campaign "
                f"(mismatched: {', '.join(fields)}):\n"
                f"  stored:   {stored_header}\n  expected: {expected}"
            )
        if good_bytes < total_bytes:
            # crash tail: drop the partial record, keep the complete prefix
            with self.path.open("r+b") as f:
                f.truncate(good_bytes)
        if legacy:
            # Upgrade the header before any append: rows this campaign
            # adds are computed by the *current* models, and the header
            # must describe the newest writer — the retained legacy rows
            # stay trusted as recorded (that is what resuming an old
            # nightly asks for), their bytes untouched.
            self._rewrite_header(expected)
        done: dict[int, ProgramOutcome] = {}
        self.island_records = []
        for record in lines[1:]:
            kind = record.get("kind")
            if kind == "island":
                self.island_records.append(record)
                continue
            if kind != "outcome":
                raise CampaignStoreError(
                    f"unexpected record kind {kind!r} in {self.path}"
                )
            outcome = decode_outcome(record)
            done[outcome.index] = outcome
        return done

    def append(self, outcome: ProgramOutcome) -> None:
        """Durably checkpoint one completed program."""
        self._write_line(encode_outcome(outcome), mode="a")

    def append_island(self, record: dict) -> None:
        """Durably checkpoint one island merge-point record.

        Written immediately after the outcome the boundary fell on, so
        the record's file position encodes where
        :func:`merge_shard_stores` must splice it in the merged file.
        """
        self._write_line(record, mode="a")
        self.island_records.append(record)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _identity(header: dict) -> dict:
        """The campaign identity a header pins, normalized across versions
        (pre-v4 headers imply islands=0 / merge_every=0)."""
        ident = {k: v for k, v in header.items() if k != "version"}
        for key, default in _HEADER_DEFAULTS.items():
            ident.setdefault(key, default)
        return ident

    @classmethod
    def _legacy_match(cls, stored: dict, expected: dict) -> bool:
        """Whether ``stored`` is the same campaign at an older, readable
        format version — the ``--resume`` compat path for pre-masked-tier
        nightly checkpoints (rows simply decode with ``tag=None``, headers
        without island fields as islands=0)."""
        if stored.get("version") not in _READABLE_VERSIONS:
            return False
        return cls._identity(stored) == cls._identity(expected)

    def _rewrite_header(self, header: dict) -> None:
        """Replace the first line with ``header``, record bytes untouched
        (atomic via temp-file rename, like the append path's fsync this
        never leaves a torn file behind)."""
        data = self.path.read_bytes()
        _, _, records = data.partition(b"\n")
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("wb") as f:
            f.write(
                json.dumps(header, separators=(",", ":")).encode("utf-8")
                + b"\n"
                + records
            )
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path)

    def _write_line(self, record: dict, mode: str) -> None:
        with self.path.open(mode, encoding="utf-8") as f:
            f.write(json.dumps(record, separators=(",", ":")) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def _read_complete_lines(self) -> tuple[list[dict], int, int]:
        """All decodable leading records + the byte offset they end at.

        Stops at the first line that fails to decode (a record half-written
        when the process died); callers truncate the file there.
        """
        records: list[dict] = []
        good = 0
        data = self.path.read_bytes()
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # partial final line
            try:
                records.append(json.loads(raw.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                break
            good += len(raw)
        return records, good, len(data)


def load_result(path: str | os.PathLike) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from a checkpoint file alone.

    The file is self-describing (the header pins approach, budget, levels,
    compilers and shard), so this is how shard results come back together
    after running on separate machines: load each shard's JSONL and hand
    the results to :func:`merge_shards`.  Timing and cache/dedup counters
    are not checkpointed — they describe the machine that ran the shard,
    not the campaign — so they read zero on a loaded result.
    """
    store = CampaignStore(path)
    lines, _, _ = store._read_complete_lines()
    if not lines or lines[0].get("kind") != "campaign":
        raise CampaignStoreError(f"{path} is not a campaign checkpoint")
    header = lines[0]
    if header.get("version") not in _READABLE_VERSIONS:
        raise CampaignStoreError(
            f"{path}: unsupported checkpoint version {header.get('version')!r}"
        )
    outcomes = []
    for record in lines[1:]:
        kind = record.get("kind")
        if kind == "island":
            continue  # merge-point metadata, not a program outcome
        if kind != "outcome":
            raise CampaignStoreError(
                f"unexpected record kind {kind!r} in {path}"
            )
        outcomes.append(decode_outcome(record))
    outcomes.sort(key=lambda o: o.index)
    return CampaignResult(
        approach=header["approach"],
        budget=header["budget"],
        levels=tuple(OptLevel(s) for s in header["levels"]),
        compilers=tuple(header["compilers"]),
        outcomes=outcomes,
        shard_index=header["shard_index"],
        shard_count=header["shard_count"],
        tiers=header.get("tiers", "baseline"),
    )


def load_triggers(path: str | os.PathLike) -> list[ProgramOutcome]:
    """The triggering programs persisted in a checkpoint, in index order.

    Checkpoints record *every* completed program (that is what resume
    needs); this convenience extracts just the ones that diverged, for
    ad-hoc inspection and for feeding
    :func:`repro.triage.triage_outcomes` directly.  (``llm4fp triage``
    itself goes through :func:`load_result` because its report also
    counts the non-triggering programs.)
    """
    return load_result(path).triggering_outcomes


def read_island_records(path: str | os.PathLike) -> list[dict]:
    """All complete ``island`` merge-point records in a checkpoint.

    The sharded exchange path: an island polls its siblings' checkpoint
    files for the exports it needs to cross a merge point.  A file that
    does not exist yet (the sibling has not started) reads as ``[]``, as
    does a crash tail — only complete, fsync'd records are visible.
    """
    p = Path(path)
    if not p.exists():
        return []
    lines, _, _ = CampaignStore(p)._read_complete_lines()
    return [
        r for r in lines if isinstance(r, dict) and r.get("kind") == "island"
    ]


# -- incremental progress reads ---------------------------------------------------


def tail_outcomes(
    path: str | os.PathLike, offset: int = 0
) -> tuple[list[int], int]:
    """Budget indices of complete outcome records appended since ``offset``.

    The fleet supervisor's heartbeat: a worker's only obligation is to
    keep appending fsync'd records to its checkpoint, so *row growth at
    the file's tail* is liveness.  This reads from byte ``offset``
    (0 = start of file), decodes only the complete trailing records —
    never re-reading the prefix a previous call already consumed — and
    returns ``(new_indices, new_offset)`` where ``new_offset`` is the
    position after the last complete line.  A partial final line (a
    record being appended right now, or a crash tail) is left for the
    next call.  A file that does not exist yet reads as ``([], 0)``:
    a freshly assigned worker simply has not created its store yet.

    Non-outcome records (the header) are consumed but not reported.
    """
    p = Path(path)
    try:
        with p.open("rb") as f:
            f.seek(offset)
            data = f.read()
    except FileNotFoundError:
        return [], 0
    indices: list[int] = []
    good = offset
    for raw in data.splitlines(keepends=True):
        if not raw.endswith(b"\n"):
            break  # partial final line: mid-append or crash tail
        try:
            record = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            break
        good += len(raw)
        if isinstance(record, dict) and record.get("kind") == "outcome":
            indices.append(record["index"])
    return indices, good


# -- shard merging ---------------------------------------------------------------


def merge_shards(results: list[CampaignResult]) -> CampaignResult:
    """Splice disjoint shard results back into one complete campaign.

    The input must be every shard of one campaign (each produced with the
    same approach/budget/levels/compilers and a common ``shard_count``).
    Outcomes are re-interleaved by budget index and matrix-stage timings
    and dedup counters summed; the merged result is bit-identical to an
    unsharded run for every observable field.  Generation time (and
    simulated LLM latency) is taken as the *maximum* over shards, not the
    sum: every shard replays the full program stream, so summing would
    overstate it ~shard_count-fold relative to the unsharded run.
    """
    if not results:
        raise ValueError("merge_shards needs at least one shard result")
    first = results[0]
    identity = (first.approach, first.budget, first.levels, first.compilers, first.tiers)
    count = first.shard_count
    seen: set[int] = set()
    for r in results:
        if (r.approach, r.budget, r.levels, r.compilers, r.tiers) != identity:
            raise ValueError(
                "shard results describe different campaigns: "
                f"{(r.approach, r.budget)} vs {(first.approach, first.budget)}"
            )
        if r.shard_count != count:
            raise ValueError(
                f"mixed shard counts: {r.shard_count} vs {count}"
            )
        if r.shard_index in seen:
            raise ValueError(f"duplicate shard {r.shard_index}/{count}")
        seen.add(r.shard_index)
    if seen != set(range(count)):
        missing = sorted(set(range(count)) - seen)
        raise ValueError(f"incomplete shard set: missing {missing} of /{count}")
    outcomes = sorted(
        (o for r in results for o in r.outcomes), key=lambda o: o.index
    )
    indices = [o.index for o in outcomes]
    if indices != list(range(first.budget)):
        raise ValueError(
            "merged shards do not cover the budget exactly "
            f"({len(indices)} outcomes for budget {first.budget})"
        )
    merged = replace(
        first,
        outcomes=outcomes,
        generation_seconds=max(r.generation_seconds for r in results),
        frontend_seconds=sum(r.frontend_seconds for r in results),
        compile_seconds=sum(r.compile_seconds for r in results),
        execute_seconds=sum(r.execute_seconds for r in results),
        compare_seconds=sum(r.compare_seconds for r in results),
        llm_latency_seconds=max(r.llm_latency_seconds for r in results),
        cache_hits=sum(r.cache_hits for r in results),
        cache_misses=sum(r.cache_misses for r in results),
        shared_runs=sum(r.shared_runs for r in results),
        total_runs=sum(r.total_runs for r in results),
        shard_index=0,
        shard_count=1,
    )
    return merged


def merge_shard_stores(
    paths: list[str | os.PathLike], out_path: str | os.PathLike
) -> Path:
    """Splice shard checkpoint *files* into one merged checkpoint file.

    Where :func:`merge_shards` merges in-memory results, this merges at
    the byte level: each shard's record lines are kept verbatim (never
    re-encoded) and written to ``out_path`` in budget-index order under a
    header whose shard is rewritten to ``0/1``.  Because every shard
    replays the identical program stream and the engine's encoding is
    deterministic, the merged file is **byte-identical to the checkpoint
    an unsharded ``run --resume`` would have written** — the property the
    fleet supervisor's kill/reassign contract is audited against.

    Validates the same invariants as :func:`merge_shards`: one campaign
    identity, a common shard count, no duplicate or missing shards, and
    exact coverage of the budget.  Raises :class:`CampaignStoreError` on
    any violation (the merged file is not written).
    """
    if not paths:
        raise CampaignStoreError("merge_shard_stores needs at least one shard file")
    headers: list[dict] = []
    rows: dict[int, bytes] = {}
    island_rows: dict[int, list[bytes]] = {}  # budget index -> island lines after it
    for path in paths:
        data = Path(path).read_bytes()
        header: dict | None = None
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # crash tail: the complete prefix is what resume trusts
            try:
                record = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                break
            if header is None:
                if record.get("kind") != "campaign":
                    raise CampaignStoreError(f"{path} is not a campaign checkpoint")
                if record.get("version") not in _READABLE_VERSIONS:
                    raise CampaignStoreError(
                        f"{path}: unsupported checkpoint version "
                        f"{record.get('version')!r}"
                    )
                header = record
                continue
            if record.get("kind") == "island":
                island_rows.setdefault(int(record["after"]), []).append(raw)
                continue
            if record.get("kind") != "outcome":
                raise CampaignStoreError(
                    f"unexpected record kind {record.get('kind')!r} in {path}"
                )
            index = record["index"]
            if index in rows:
                raise CampaignStoreError(
                    f"duplicate outcome for budget index {index} "
                    f"(shards overlap or a file was passed twice)"
                )
            rows[index] = raw
        if header is None:
            raise CampaignStoreError(f"{path} is not a campaign checkpoint")
        headers.append(header)

    def identity(h: dict) -> tuple:
        return tuple(
            (k, json.dumps(v, sort_keys=True))
            for k, v in sorted(h.items())
            if k not in ("shard_index", "shard_count")
        )

    first = headers[0]
    count = first.get("shard_count")
    seen: set[int] = set()
    for h in headers:
        if identity(h) != identity(first):
            raise CampaignStoreError(
                "shard checkpoints describe different campaigns:\n"
                f"  {first}\n  {h}"
            )
        if h.get("shard_count") != count:
            raise CampaignStoreError(
                f"mixed shard counts: {h.get('shard_count')} vs {count}"
            )
        if h.get("shard_index") in seen:
            raise CampaignStoreError(
                f"duplicate shard {h.get('shard_index')}/{count}"
            )
        seen.add(h.get("shard_index"))
    if seen != set(range(count)):
        missing = sorted(set(range(count)) - seen)
        raise CampaignStoreError(
            f"incomplete shard set: missing {missing} of /{count}"
        )
    budget = first["budget"]
    if sorted(rows) != list(range(budget)):
        raise CampaignStoreError(
            "merged shards do not cover the budget exactly "
            f"({len(rows)} outcomes for budget {budget})"
        )
    # The merged header is shard 0's header with the shard rewritten —
    # same key order as the writer, so the bytes match an unsharded run.
    merged_header = dict(first)
    merged_header["shard_index"] = 0
    merged_header["shard_count"] = 1
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_name(out.name + ".tmp")
    with tmp.open("wb") as f:
        f.write(
            json.dumps(merged_header, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        for index in range(budget):
            f.write(rows[index])
            # Each shard wrote its island records right after the boundary
            # outcome; replaying them at the same index reproduces the
            # byte layout of the unsharded --islands run.
            for raw in island_rows.get(index, ()):
                f.write(raw)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, out)
    return out
