"""Campaign configuration (paper §3.1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.toolchains.optlevels import ALL_LEVELS, OptLevel

__all__ = ["CampaignConfig"]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one differential-testing campaign.

    Defaults mirror the paper: 1,000 programs, all six Table 1 levels,
    3 compilers => 3 pairs x 6 levels x N programs = 18N comparisons.
    """

    budget: int = 1000
    levels: tuple[OptLevel, ...] = ALL_LEVELS
    max_steps: int = 2_000_000
    seed: int = 20250916

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if not self.levels:
            raise ValueError("need at least one optimization level")

    def total_comparisons(self, n_compilers: int) -> int:
        pairs = n_compilers * (n_compilers - 1) // 2
        return pairs * len(self.levels) * self.budget
