"""Differential testing: the campaign loop of the paper's Figure 1.

Generate -> compile with every (compiler, level) -> run -> compare outputs
bitwise for every compiler pair at each level -> classify -> feed successes
back to the generator.
"""

from repro.difftest.config import CampaignConfig
from repro.difftest.compare import digit_difference, compare_signatures
from repro.difftest.classify import inconsistency_kind, KindCount
from repro.difftest.record import (
    ComparisonRecord,
    ProgramOutcome,
    CampaignResult,
)
from repro.difftest.backend import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
    resolve_jobs,
)
from repro.difftest.engine import (
    CampaignEngine,
    CompileRecord,
    EngineConfig,
    ExecuteRecord,
    FrontendRecord,
    STAGES,
)
from repro.difftest.harness import DifferentialHarness, run_campaign
from repro.difftest.report import CampaignReport
from repro.difftest.store import CampaignStore, CampaignStoreError, merge_shards

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "resolve_jobs",
    "CampaignStore",
    "CampaignStoreError",
    "merge_shards",
    "CampaignConfig",
    "digit_difference",
    "compare_signatures",
    "inconsistency_kind",
    "KindCount",
    "ComparisonRecord",
    "ProgramOutcome",
    "CampaignResult",
    "CampaignEngine",
    "EngineConfig",
    "FrontendRecord",
    "CompileRecord",
    "ExecuteRecord",
    "STAGES",
    "DifferentialHarness",
    "run_campaign",
    "CampaignReport",
]
