"""Differential testing: the campaign loop of the paper's Figure 1.

Generate -> compile with every (compiler, level) -> run -> compare outputs
bitwise for every compiler pair at each level -> classify -> feed successes
back to the generator.
"""

from repro.difftest.config import CampaignConfig
from repro.difftest.compare import digit_difference, compare_signatures
from repro.difftest.classify import inconsistency_kind, KindCount
from repro.difftest.record import (
    ComparisonRecord,
    ProgramOutcome,
    CampaignResult,
)
from repro.difftest.engine import (
    CampaignEngine,
    CompileRecord,
    EngineConfig,
    ExecuteRecord,
    FrontendRecord,
    STAGES,
)
from repro.difftest.harness import DifferentialHarness, run_campaign
from repro.difftest.report import CampaignReport

__all__ = [
    "CampaignConfig",
    "digit_difference",
    "compare_signatures",
    "inconsistency_kind",
    "KindCount",
    "ComparisonRecord",
    "ProgramOutcome",
    "CampaignResult",
    "CampaignEngine",
    "EngineConfig",
    "FrontendRecord",
    "CompileRecord",
    "ExecuteRecord",
    "STAGES",
    "DifferentialHarness",
    "run_campaign",
    "CampaignReport",
]
