"""Result records produced by a campaign."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.difftest.classify import inconsistency_kind
from repro.fp.classify import FPClass
from repro.generation.program import GeneratedProgram
from repro.toolchains.optlevels import OptLevel

__all__ = ["ComparisonRecord", "ProgramOutcome", "CampaignResult"]


@dataclass(frozen=True)
class ComparisonRecord:
    """One pairwise output comparison at one optimization level.

    ``tag`` carries a structural inconsistency kind when one applies —
    the tag of a registered divergence tier (:mod:`repro.tiers`:
    ``vec-libm``, ``mixed-precision``, ``masked-int-guard``,
    ``masked-lane``, ``vector-reduction``) — set by the engine when the
    two sides' optimized kernels extract different tier shapes under
    observationally equal FP environments.  It complements (never
    replaces) the value-class ``kind``: Figure 3 taxonomies stay
    value-based, while triage keys on the structural kind when present.
    """

    program_index: int
    compiler_a: str
    compiler_b: str
    level: OptLevel
    consistent: bool
    value_a: float | None = None
    value_b: float | None = None
    digit_diff: int = 0
    tag: str | None = None

    @property
    def pair(self) -> tuple[str, str]:
        return (self.compiler_a, self.compiler_b)

    @property
    def kind(self) -> frozenset[FPClass] | None:
        if self.consistent or self.value_a is None or self.value_b is None:
            return None
        return inconsistency_kind(self.value_a, self.value_b)


@dataclass
class ProgramOutcome:
    """Everything observed for one generated program."""

    index: int
    program: GeneratedProgram
    compiled: dict[str, bool] = field(default_factory=dict)  # "gcc/O2" -> ok
    ran: dict[str, bool] = field(default_factory=dict)
    comparisons: list[ComparisonRecord] = field(default_factory=list)
    triggered: bool = False  # at least one inconsistency -> successful set
    #: per-binary outputs ("gcc/O2" -> hex signature / final value), kept for
    #: the within-compiler RQ4 analysis (each level vs O0_nofma).
    signatures: dict[str, str] = field(default_factory=dict)
    values: dict[str, float] = field(default_factory=dict)

    @property
    def inconsistent_comparisons(self) -> list[ComparisonRecord]:
        return [c for c in self.comparisons if not c.consistent]


@dataclass
class CampaignResult:
    """Aggregate of one approach's full campaign.

    Time cost is attributed to the engine's five stages (generate /
    frontend / compile / execute / compare) plus simulated LLM latency;
    the cache and run-sharing counters record how much of the compile+
    execute matrix was deduplicated rather than recomputed.
    """

    approach: str
    budget: int
    levels: tuple[OptLevel, ...]
    compilers: tuple[str, ...]
    outcomes: list[ProgramOutcome] = field(default_factory=list)
    generation_seconds: float = 0.0
    frontend_seconds: float = 0.0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    compare_seconds: float = 0.0
    llm_latency_seconds: float = 0.0
    #: content-addressed compile-cache counters (0 when the cache is off)
    cache_hits: int = 0
    cache_misses: int = 0
    #: executions served by an identical binary's run / total executions
    shared_runs: int = 0
    total_runs: int = 0
    #: which slice of the budget this result covers (``index % shard_count
    #: == shard_index``); the default 0/1 is a complete, unsharded run.
    #: ``budget`` always records the *full* campaign budget, so merged
    #: shards and unsharded runs agree on every denominator.
    shard_index: int = 0
    shard_count: int = 1
    #: divergence-tier profile the compilers ran under (see
    #: :func:`repro.toolchains.optlevels.tier_policy`); ``"baseline"``
    #: reproduces pre-registry campaigns exactly.
    tiers: str = "baseline"

    @property
    def comparisons(self) -> list[ComparisonRecord]:
        return [c for o in self.outcomes for c in o.comparisons]

    @property
    def total_comparisons(self) -> int:
        """The paper's denominator: C(compilers,2) x levels x programs —
        comparisons that could not run (compile/run failure) still count."""
        pairs = len(self.compilers) * (len(self.compilers) - 1) // 2
        return pairs * len(self.levels) * self.budget

    @property
    def inconsistencies(self) -> int:
        return sum(1 for c in self.comparisons if not c.consistent)

    @property
    def inconsistency_rate(self) -> float:
        total = self.total_comparisons
        return self.inconsistencies / total if total else 0.0

    @property
    def triggering_programs(self) -> int:
        return sum(1 for o in self.outcomes if o.triggered)

    @property
    def triggering_outcomes(self) -> list[ProgramOutcome]:
        """The outcomes the triage subsystem consumes: every program that
        exhibited at least one inconsistency, in budget-index order."""
        return [o for o in self.outcomes if o.triggered]

    @property
    def sources(self) -> list[str]:
        return [o.program.source for o in self.outcomes]

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Wall-clock per engine stage, in pipeline order."""
        return {
            "generate": self.generation_seconds,
            "frontend": self.frontend_seconds,
            "compile": self.compile_seconds,
            "execute": self.execute_seconds,
            "compare": self.compare_seconds,
        }

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def run_share_rate(self) -> float:
        return self.shared_runs / self.total_runs if self.total_runs else 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.generation_seconds
            + self.frontend_seconds
            + self.compile_seconds
            + self.execute_seconds
            + self.compare_seconds
            + self.llm_latency_seconds
        )
