"""Execution backends: how the engine's per-program matrix fans out.

The staged engine treats "run these independent work units" as a policy
decision separated from the stages themselves.  Three policies exist:

* :class:`SerialBackend` — everything inline on the calling thread.  The
  reference cost model; zero scheduling overhead.
* :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Adds scheduling slack but no CPU parallelism under CPython's GIL; pays
  off on GIL-free runtimes or once stages grow I/O sections.
* :class:`ProcessBackend` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  for the execute stage.  Kernel runs are dispatched as picklable task
  specs (optimized IR, FP environment, inputs, step limit) through the
  pure :func:`repro.execution.worker.run_kernel_task`, chunked to amortize
  IPC.  This is real multi-core parallelism: the interpreter dominates
  campaign wall-clock and each run is independent.  Compile-stage work
  stays in the parent process — compilations are cheap, and the
  campaign-wide compile cache lives in parent memory where child writes
  would be lost.

Every backend returns results in task order, so the engine fills its
records in the same deterministic sequence regardless of policy: a
:class:`~repro.difftest.record.CampaignResult` is byte-identical across
backends and job counts (the worker's purity guarantee plus pickle's
bit-exact float round-trip).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.execution.batch import BatchTask, run_batch_task
from repro.execution.result import ExecutionResult
from repro.execution.worker import KernelTask, run_kernel_task

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "parse_jobs",
    "resolve_jobs",
]

#: Recognized backend names, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")


def resolve_jobs(jobs: int | str) -> int:
    """Normalize a jobs knob: a positive int, or ``"auto"`` for one worker
    per available CPU."""
    if jobs == "auto":
        return os.cpu_count() or 1
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive int or 'auto', got {jobs!r}")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return jobs


def parse_jobs(text: str) -> int | str:
    """Parse a user-facing jobs string (CLI flag, env var): a decimal
    worker count or the literal ``auto``.  The single authority every
    surface delegates to."""
    if text == "auto":
        return "auto"
    try:
        jobs = int(text)
    except ValueError as e:
        raise ValueError(f"jobs must be an integer or 'auto', got {text!r}") from e
    resolve_jobs(jobs)  # range check
    return jobs


class ExecutionBackend:
    """Ordered fan-out of independent work units.

    ``map_inline`` schedules parent-process callables (the compile stage);
    ``run_kernels`` schedules pure kernel executions and is the only hook
    a backend may move across a process boundary.  Both preserve input
    order.  Backends are context managers; pools are created lazily on
    first use and torn down on exit.
    """

    name: str = "abstract"
    jobs: int = 1

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release pool resources (idempotent)."""

    def map_inline(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item, in order, in the parent process."""
        return [fn(item) for item in items]

    def run_kernels(self, tasks: Sequence[KernelTask]) -> list[ExecutionResult]:
        """Execute every (kernel, env, inputs, max_steps) task, in order."""
        return [run_kernel_task(task) for task in tasks]

    def run_batches(
        self, tasks: Sequence[BatchTask]
    ) -> list[tuple[ExecutionResult, ...]]:
        """Execute every batched task (one kernel, many input sets), in
        order.  Same scheduling policy as :meth:`run_kernels`; one tape
        compile (or interpreter) per task instead of per input."""
        return [run_batch_task(task) for task in tasks]


class SerialBackend(ExecutionBackend):
    """Everything inline; the reference for determinism and cost."""

    name = "serial"


class ThreadBackend(ExecutionBackend):
    """Thread-pool fan-out of both compile and execute units."""

    name = "thread"

    def __init__(self, jobs: int) -> None:
        self.jobs = resolve_jobs(jobs)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="campaign"
            )
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def map_inline(self, fn: Callable, items: Sequence) -> list:
        if self.jobs == 1 or len(items) < 2:
            return [fn(item) for item in items]
        return list(self._ensure().map(fn, items))

    def run_kernels(self, tasks: Sequence[KernelTask]) -> list[ExecutionResult]:
        if self.jobs == 1 or len(tasks) < 2:
            return [run_kernel_task(task) for task in tasks]
        return list(self._ensure().map(run_kernel_task, tasks))

    def run_batches(
        self, tasks: Sequence[BatchTask]
    ) -> list[tuple[ExecutionResult, ...]]:
        if self.jobs == 1 or len(tasks) < 2:
            return [run_batch_task(task) for task in tasks]
        return list(self._ensure().map(run_batch_task, tasks))


def _chunksize(n_tasks: int, jobs: int) -> int:
    """Tasks per IPC message: enough to amortize pickling, small enough to
    keep all workers fed (at least two waves per worker when possible)."""
    return max(1, n_tasks // (jobs * 2))


class ProcessBackend(ExecutionBackend):
    """Process-pool fan-out of the execute stage (true multi-core).

    Compile units run inline in the parent: they are cheap relative to
    execution, and the content-addressed compile cache must observe every
    compilation.  Execute tasks ship to workers as picklable specs and
    results gather in task order, so output is byte-identical to
    :class:`SerialBackend`.
    """

    name = "process"

    def __init__(self, jobs: int) -> None:
        self.jobs = resolve_jobs(jobs)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_kernels(self, tasks: Sequence[KernelTask]) -> list[ExecutionResult]:
        if self.jobs == 1 or len(tasks) < 2:
            return [run_kernel_task(task) for task in tasks]
        pool = self._ensure()
        return list(
            pool.map(
                run_kernel_task, tasks, chunksize=_chunksize(len(tasks), self.jobs)
            )
        )

    def run_batches(
        self, tasks: Sequence[BatchTask]
    ) -> list[tuple[ExecutionResult, ...]]:
        if self.jobs == 1 or len(tasks) < 2:
            return [run_batch_task(task) for task in tasks]
        pool = self._ensure()
        return list(
            pool.map(
                run_batch_task, tasks, chunksize=_chunksize(len(tasks), self.jobs)
            )
        )


def create_backend(name: str, jobs: int | str) -> ExecutionBackend:
    """Instantiate the named backend with ``jobs`` workers."""
    if name == "serial":
        if resolve_jobs(jobs) != 1:
            raise ValueError("the serial backend runs inline; use jobs=1")
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(jobs)
    if name == "process":
        return ProcessBackend(jobs)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
