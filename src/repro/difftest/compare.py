"""Bitwise output comparison (paper §2.4, §3.4).

Two outputs are inconsistent when their hexadecimal encodings differ; the
*digit difference* counts how many of the 16 hex digits of the final result
differ, the severity measure of Table 4 (min/max/avg columns).
"""

from __future__ import annotations

from repro.fp.bits import double_to_hex

__all__ = ["compare_signatures", "digit_difference", "value_digit_difference"]


def compare_signatures(a: str | None, b: str | None) -> bool | None:
    """True if consistent, False if inconsistent, None if not comparable
    (either side failed to compile or run)."""
    if a is None or b is None:
        return None
    return a == b


def digit_difference(hex_a: str, hex_b: str) -> int:
    """Number of differing hex digits between two equal-length encodings."""
    if len(hex_a) != len(hex_b):
        raise ValueError("signatures have different shapes")
    return sum(1 for ca, cb in zip(hex_a, hex_b) if ca != cb)


def value_digit_difference(a: float, b: float) -> int:
    """Digit difference between two doubles' 16-digit encodings."""
    return digit_difference(double_to_hex(a), double_to_hex(b))
