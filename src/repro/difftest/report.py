"""Aggregations over a campaign: the numbers behind every paper artefact.

* :meth:`CampaignReport.summary` — Table 2 row (rate, count, time).
* :meth:`CampaignReport.kind_counts` — Figure 3 bars.
* :meth:`CampaignReport.kinds_by_level` — Table 3.
* :meth:`CampaignReport.pair_level_cells` — Table 4 (rates + digit stats).
* :meth:`CampaignReport.vs_o0_nofma` — Table 5 (within-compiler RQ4).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations

from repro.difftest.classify import KindCount
from repro.difftest.record import CampaignResult
from repro.toolchains.optlevels import OptLevel
from repro.utils.timing import format_hms

__all__ = ["DigitStats", "PairLevelCell", "CampaignReport"]


@dataclass(frozen=True)
class DigitStats:
    """min / max / average differing hex digits of a set of inconsistencies."""

    count: int
    min: int
    max: int
    avg: float

    @staticmethod
    def of(diffs: list[int]) -> "DigitStats":
        if not diffs:
            return DigitStats(0, 0, 0, 0.0)
        return DigitStats(
            len(diffs), min(diffs), max(diffs), sum(diffs) / len(diffs)
        )

    def render(self) -> str:
        if self.count == 0:
            return "-"
        return f"({self.min}/{self.max}/{self.avg:.2f})"


@dataclass(frozen=True)
class PairLevelCell:
    """One Table 4 cell: rate (over the grand total) + digit stats."""

    inconsistencies: int
    rate: float
    digits: DigitStats

    def render(self) -> str:
        if self.inconsistencies == 0:
            return "0.00%"
        return f"{self.rate * 100:.2f}% {self.digits.render()}"


class CampaignReport:
    """Read-side views over one approach's :class:`CampaignResult`."""

    def __init__(self, result: CampaignResult) -> None:
        self.result = result

    # -- Table 2 ------------------------------------------------------------------

    def summary(self) -> dict:
        r = self.result
        return {
            "approach": r.approach,
            "inconsistency_rate": r.inconsistency_rate,
            "inconsistencies": r.inconsistencies,
            "total_comparisons": r.total_comparisons,
            "triggering_programs": r.triggering_programs,
            "time_cost": format_hms(r.total_seconds),
            "time_seconds": r.total_seconds,
            "stage_seconds": r.stage_seconds,
            "cache_hit_rate": r.cache_hit_rate,
            "run_share_rate": r.run_share_rate,
        }

    # -- engine cost attribution -------------------------------------------------

    def stage_summary(self) -> dict:
        """Per-stage wall clock plus dedup counters (the engine's five
        buckets, replacing the old generate/test split)."""
        r = self.result
        return {
            "stage_seconds": r.stage_seconds,
            "llm_latency_seconds": r.llm_latency_seconds,
            "total_seconds": r.total_seconds,
            "cache_hits": r.cache_hits,
            "cache_misses": r.cache_misses,
            "cache_hit_rate": r.cache_hit_rate,
            "shared_runs": r.shared_runs,
            "total_runs": r.total_runs,
            "run_share_rate": r.run_share_rate,
        }

    def render_stages(self) -> str:
        """Human-readable stage/time breakdown for CLI summaries."""
        r = self.result
        lines = ["stage breakdown:"]
        for stage, seconds in r.stage_seconds.items():
            lines.append(f"  {stage:<10} {format_hms(seconds)}  ({seconds:8.2f}s)")
        if r.llm_latency_seconds:
            lines.append(
                f"  {'llm':<10} {format_hms(r.llm_latency_seconds)}"
                f"  ({r.llm_latency_seconds:8.2f}s)"
            )
        if r.cache_hits or r.cache_misses:
            lines.append(
                f"  compile cache: {r.cache_hits}/{r.cache_hits + r.cache_misses}"
                f" hits ({r.cache_hit_rate * 100:.1f}%)"
            )
        if r.total_runs:
            lines.append(
                f"  shared runs:   {r.shared_runs}/{r.total_runs}"
                f" ({r.run_share_rate * 100:.1f}%)"
            )
        return "\n".join(lines)

    # -- Figure 3 -------------------------------------------------------------------

    def kind_counts(self) -> KindCount:
        kinds = KindCount()
        for c in self.result.comparisons:
            if not c.consistent and c.value_a is not None and c.value_b is not None:
                kinds.record(c.value_a, c.value_b)
        return kinds

    def tag_counts(self) -> dict[str, int]:
        """Structural inconsistency kinds — divergence-tier tags from
        :mod:`repro.tiers` (``vector-reduction``, ``masked-lane``,
        ``vec-libm``, ...) — by count.

        Orthogonal to :meth:`kind_counts`: a tagged comparison still
        appears in its value-class bucket, so Figure 3 totals are
        unchanged by the vector and masking tiers.
        """
        counts = Counter(
            c.tag for c in self.result.comparisons if not c.consistent and c.tag
        )
        return dict(sorted(counts.items()))

    # -- Table 3 --------------------------------------------------------------------

    def kinds_by_level(self) -> dict[OptLevel, KindCount]:
        by_level: dict[OptLevel, KindCount] = {lvl: KindCount() for lvl in self.result.levels}
        for c in self.result.comparisons:
            if not c.consistent and c.value_a is not None and c.value_b is not None:
                by_level[c.level].record(c.value_a, c.value_b)
        return by_level

    # -- Table 4 ---------------------------------------------------------------------

    def compiler_pairs(self) -> list[tuple[str, str]]:
        return list(combinations(self.result.compilers, 2))

    def pair_level_cells(self) -> dict[tuple[str, str], dict[OptLevel, PairLevelCell]]:
        grand_total = self.result.total_comparisons
        buckets: dict[tuple[str, str], dict[OptLevel, list[int]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for c in self.result.comparisons:
            if not c.consistent:
                buckets[c.pair][c.level].append(c.digit_diff)
        out: dict[tuple[str, str], dict[OptLevel, PairLevelCell]] = {}
        for pair in self.compiler_pairs():
            out[pair] = {}
            for level in self.result.levels:
                diffs = buckets.get(pair, {}).get(level, [])
                out[pair][level] = PairLevelCell(
                    inconsistencies=len(diffs),
                    rate=len(diffs) / grand_total if grand_total else 0.0,
                    digits=DigitStats.of(diffs),
                )
        return out

    def pair_totals(self) -> dict[tuple[str, str], float]:
        """Table 4's Total row: per-pair rate over the grand total."""
        cells = self.pair_level_cells()
        return {
            pair: sum(cell.rate for cell in by_level.values())
            for pair, by_level in cells.items()
        }

    # -- Table 5 ------------------------------------------------------------------------

    def vs_o0_nofma(self) -> dict[str, dict[OptLevel, float]]:
        """Within-compiler rates: each level's output vs the O0_nofma
        baseline of the *same* compiler (RQ4).

        Row normalization follows the paper: each (compiler, level) count is
        divided by (number of non-baseline levels x budget), so a compiler's
        Total is the sum of its rows.
        """
        baseline = OptLevel.O0_NOFMA
        if baseline not in self.result.levels:
            raise ValueError("campaign did not include the O0_nofma baseline")
        others = [lvl for lvl in self.result.levels if lvl is not baseline]
        denom = len(others) * self.result.budget
        counts: dict[str, Counter] = {c: Counter() for c in self.result.compilers}
        for outcome in self.result.outcomes:
            for compiler in self.result.compilers:
                base_sig = outcome.signatures.get(f"{compiler}/{baseline}")
                if base_sig is None:
                    continue
                for level in others:
                    sig = outcome.signatures.get(f"{compiler}/{level}")
                    if sig is not None and sig != base_sig:
                        counts[compiler][level] += 1
        return {
            compiler: {
                level: (counts[compiler][level] / denom if denom else 0.0)
                for level in others
            }
            for compiler in self.result.compilers
        }

    def vs_o0_nofma_totals(self) -> dict[str, float]:
        rates = self.vs_o0_nofma()
        return {c: sum(by_level.values()) for c, by_level in rates.items()}

    # -- digit differences (Table 4 narrative: RQ3 severity) ------------------------------

    def digit_stats_overall(self) -> DigitStats:
        diffs = [c.digit_diff for c in self.result.comparisons if not c.consistent]
        return DigitStats.of(diffs)

    # -- triage (reduce -> bisect -> cluster) ----------------------------------------------

    def triage(self, compilers=None, reduce: bool = True, **kwargs):
        """Triage this campaign's triggering programs into a ranked
        :class:`~repro.triage.cluster.TriageReport`.

        ``compilers`` defaults to :func:`~repro.toolchains.default_compilers`
        and must cover every compiler name the campaign recorded.  Imported
        lazily: triage builds on difftest, not the other way around.
        """
        from repro.triage.cluster import triage_campaign

        return triage_campaign(self.result, compilers, reduce=reduce, **kwargs)
