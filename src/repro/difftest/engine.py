"""The staged campaign engine (paper Figure 1, decomposed).

The original :func:`~repro.difftest.harness.run_campaign` was one
monolithic loop: generate a program, then serially compile and run every
(compiler, level) pair from scratch.  This module splits that loop into
five explicit stages with typed per-stage records and makes the
compile+execute matrix — the embarrassingly parallel middle of the loop —
cacheable and concurrently schedulable:

* **generate** — ask the generator for the next program.  Stays serial:
  the feedback loop (triggering programs re-seed the generator) makes
  program *i+1* depend on the verdict for program *i*.
* **frontend** — parse / sema / lower once per target kind
  (:class:`~repro.toolchains.base.CompilerKind`); host compilers share the
  C parse, the device compiler gets the CUDA translation.
* **compile** — one :class:`CompileRecord` per (compiler, level).  Work is
  deduplicated two ways: levels whose (pipeline, environment) coincide
  share one compilation (``Compiler.cache_token``), and a campaign-wide
  content-addressed :class:`~repro.toolchains.cache.CompileCache` means a
  structurally identical kernel anywhere in the campaign never recompiles.
* **execute** — one :class:`ExecuteRecord` per compiled binary.  Binaries
  whose optimized kernel and FP environment are content-identical produce
  bit-identical results (the interpreter is deterministic), so each
  distinct (kernel, environment) group runs once and the result is shared
  across its labels.
* **compare** — pairwise bitwise comparison at each level, unchanged
  semantics.

Distinct compile and execute units fan out to a
:class:`concurrent.futures.ThreadPoolExecutor` when ``jobs > 1``.  Results
are gathered in matrix order and every record dict is filled in the same
deterministic order as the serial loop, so a :class:`CampaignResult` is
byte-identical across job counts and cache configurations — only the
stage timings differ.

Note on throughput: the measured gains (>= 2x on the substrate workload,
``benchmarks/bench_engine.py``) come from the *dedup* — level-class
compilation sharing, the cross-program cache, and identical-binary run
sharing.  The stages here are pure Python, so under CPython's GIL thread
workers add scheduling slack but no CPU parallelism; the ``jobs`` knob
pays off on runtimes without a GIL (or if stages grow I/O / native
sections that release it).
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from itertools import combinations

from repro.difftest.compare import digit_difference
from repro.difftest.config import CampaignConfig
from repro.difftest.record import CampaignResult, ComparisonRecord, ProgramOutcome
from repro.errors import CompileError, ReproError
from repro.execution.result import ExecutionResult, _value_hex
from repro.execution.worker import run_kernel
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.generation.program import GeneratedProgram, ProgramGenerator
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.toolchains.base import Binary, Compiler, CompilerKind, _flags_or
from repro.toolchains.cache import CompileCache, env_fingerprint, kernel_fingerprint
from repro.toolchains.cuda import translate_to_cuda
from repro.toolchains.optlevels import OptLevel
from repro.utils.timing import Stopwatch

__all__ = [
    "EngineConfig",
    "FrontendRecord",
    "CompileRecord",
    "ExecuteRecord",
    "CampaignEngine",
    "STAGES",
]

#: Stage names in pipeline order (the report's time buckets).
STAGES = ("generate", "frontend", "compile", "execute", "compare")


@dataclass(frozen=True)
class EngineConfig:
    """Execution knobs of the engine (orthogonal to the campaign config).

    Attributes:
        jobs: worker threads fanning out the per-program compile+execute
            matrix; ``1`` runs every stage inline.  Thread workers give no
            CPU parallelism under CPython's GIL (see the module docstring)
            — the throughput wins come from caching and run sharing.
        compile_cache: keep a campaign-wide content-addressed cache of
            compiled binaries (kernel fingerprint x compiler x level class).
        cache_capacity: LRU bound of that cache, in binaries.
        share_runs: deduplicate work *within* one program's matrix — levels
            with identical pipelines compile once, and binaries with
            content-identical (optimized kernel, environment) execute once.
            Disabling both knobs reproduces the legacy serial cost model
            exactly (used as the benchmark baseline).
    """

    jobs: int = 1
    compile_cache: bool = True
    cache_capacity: int = 4096
    share_runs: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")


@dataclass
class FrontendRecord:
    """Per-kind front-end artefacts of one program."""

    kernels: dict[CompilerKind, ir.Kernel] = field(default_factory=dict)
    fingerprints: dict[CompilerKind, str] = field(default_factory=dict)
    errors: dict[CompilerKind, str] = field(default_factory=dict)


@dataclass
class CompileRecord:
    """One (compiler, level) cell of the compile stage."""

    compiler: str
    level: OptLevel
    ok: bool
    binary: Binary | None = None
    cache_hit: bool = False
    shared: bool = False  # reused a sibling level's compilation
    error: str | None = None

    @property
    def label(self) -> str:
        return f"{self.compiler}/{self.level}"


@dataclass
class ExecuteRecord:
    """One binary's execution, possibly shared across identical binaries."""

    label: str
    result: ExecutionResult
    shared: bool = False  # served by another label's identical run


@dataclass
class _BinaryRun:
    """Signature + values of one successful execution (compare-stage view)."""

    signature: str | None
    value: float | None
    printed: tuple[float, ...] = ()


def _validate_compilers(compilers: list[Compiler]) -> None:
    if len(compilers) < 2:
        names = ", ".join(c.name for c in compilers) or "none"
        raise ValueError(
            "differential testing needs at least two compilers, "
            f"got {len(compilers)} ({names})"
        )
    counts = Counter(c.name for c in compilers)
    dupes = sorted(name for name, n in counts.items() if n > 1)
    if dupes:
        raise ValueError(
            "compiler names must be unique; "
            f"got {len(compilers)} compilers with duplicate name(s): "
            f"{', '.join(dupes)}"
        )


class CampaignEngine:
    """Runs campaigns as explicit generate/frontend/compile/execute/compare
    stages over a fixed compiler matrix."""

    def __init__(
        self,
        compilers: list[Compiler],
        config: CampaignConfig | None = None,
        engine_config: EngineConfig | None = None,
        cache: CompileCache | None = None,
    ) -> None:
        _validate_compilers(compilers)
        self.compilers = list(compilers)
        self.config = config or CampaignConfig()
        self.engine_config = engine_config or EngineConfig()
        if cache is not None:
            self.cache: CompileCache | None = cache
        elif self.engine_config.compile_cache:
            self.cache = CompileCache(self.engine_config.cache_capacity)
        else:
            self.cache = None
        #: within-program dedup counters (aggregated into CampaignResult)
        self._shared_runs = 0
        self._total_runs = 0

    # -- campaign loop -----------------------------------------------------------

    def run(
        self, generator: ProgramGenerator, progress: object = None
    ) -> CampaignResult:
        """Run one approach's full campaign (Figure 1's outer loop).

        ``progress``, if given, is called as ``progress(i, outcome)`` after
        each program.  Generation stays serial (the feedback loop is a
        sequential dependency); each program's matrix fans out to
        ``engine_config.jobs`` workers.
        """
        config = self.config
        result = CampaignResult(
            approach=getattr(generator, "name", type(generator).__name__),
            budget=config.budget,
            levels=config.levels,
            compilers=tuple(c.name for c in self.compilers),
        )
        sw = Stopwatch()
        # Snapshot lifetime counters so a reused engine (warm shared cache,
        # prior test_program calls) reports per-run deltas, not totals.
        runs_before = (self._shared_runs, self._total_runs)
        cache_before = self.cache.stats() if self.cache is not None else None
        pool: ThreadPoolExecutor | None = None
        try:
            if self.engine_config.jobs > 1:
                pool = ThreadPoolExecutor(
                    max_workers=self.engine_config.jobs,
                    thread_name_prefix="campaign",
                )
            for i in range(config.budget):
                with sw.phase("generate"):
                    program = generator.generate()
                outcome = self.test_program(i, program, _sw=sw, _pool=pool)
                if outcome.triggered:
                    generator.notify_success(program)
                result.outcomes.append(outcome)
                if progress is not None:
                    progress(i, outcome)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        self._charge(result, sw, generator, runs_before, cache_before)
        return result

    def _charge(
        self,
        result: CampaignResult,
        sw: Stopwatch,
        generator: ProgramGenerator,
        runs_before: tuple[int, int],
        cache_before,
    ) -> None:
        result.generation_seconds = sw.buckets.get("generate", 0.0)
        result.frontend_seconds = sw.buckets.get("frontend", 0.0)
        result.compile_seconds = sw.buckets.get("compile", 0.0)
        result.execute_seconds = sw.buckets.get("execute", 0.0)
        result.compare_seconds = sw.buckets.get("compare", 0.0)
        if self.cache is not None:
            stats = self.cache.stats()
            result.cache_hits = stats.hits - (cache_before.hits if cache_before else 0)
            result.cache_misses = stats.misses - (
                cache_before.misses if cache_before else 0
            )
        result.shared_runs = self._shared_runs - runs_before[0]
        result.total_runs = self._total_runs - runs_before[1]
        llm = getattr(generator, "llm", None)
        if llm is not None:
            result.llm_latency_seconds = getattr(
                llm, "simulated_latency_seconds", 0.0
            )

    # -- one program -------------------------------------------------------------

    def test_program(
        self,
        index: int,
        program: GeneratedProgram,
        _sw: Stopwatch | None = None,
        _pool: ThreadPoolExecutor | None = None,
    ) -> ProgramOutcome:
        """Run one program through frontend/compile/execute/compare."""
        sw = _sw if _sw is not None else Stopwatch()
        outcome = ProgramOutcome(index=index, program=program)
        with sw.phase("frontend"):
            frontend = self._frontend_stage(program.source)
        with sw.phase("compile"):
            compiles = self._compile_stage(frontend, _pool)
        with sw.phase("execute"):
            executions = self._execute_stage(compiles, program.inputs, _pool)
        with sw.phase("compare"):
            runs = self._collect(compiles, executions, outcome)
            self._compare_stage(index, runs, outcome)
            outcome.triggered = any(not c.consistent for c in outcome.comparisons)
        return outcome

    # -- frontend stage ----------------------------------------------------------

    def _frontend_stage(self, source: str) -> FrontendRecord:
        """Front-end the program once per target kind (§2.4).

        A front-end failure for a kind fails all its compilations, recorded
        per-cell by the compile stage.
        """
        record = FrontendRecord()
        try:
            unit = parse_program(source)
            sema = check_program(unit)
            record.kernels[CompilerKind.HOST] = lower_compute(sema)
        except ReproError as e:
            record.errors[CompilerKind.HOST] = str(e)
            record.errors.setdefault(CompilerKind.DEVICE, str(e))
            return record
        try:
            cuda_unit = translate_to_cuda(unit)
            cuda_sema = check_program(cuda_unit)
            record.kernels[CompilerKind.DEVICE] = lower_compute(cuda_sema)
        except ReproError as e:
            record.errors[CompilerKind.DEVICE] = str(e)
        for kind, kernel in record.kernels.items():
            record.fingerprints[kind] = kernel_fingerprint(kernel)
        return record

    # -- compile stage -----------------------------------------------------------

    def _compile_stage(
        self, frontend: FrontendRecord, pool: ThreadPoolExecutor | None
    ) -> list[CompileRecord]:
        """Compile the full (compiler, level) matrix, deduplicated.

        Returns records in matrix order (compilers outer, levels inner).
        Each (compiler, cache-token) equivalence class compiles at most
        once; follower levels rebind the leader's binary to their own
        level metadata.  Distinct leader compilations fan out to the pool.
        """
        share = self.engine_config.share_runs
        records: list[CompileRecord] = []
        leaders: dict[tuple[str, str], CompileRecord] = {}
        followers: list[tuple[CompileRecord, CompileRecord, Compiler]] = []
        units: list[tuple[CompileRecord, Compiler, ir.Kernel, str, str]] = []
        for compiler in self.compilers:
            kernel = frontend.kernels.get(compiler.kind)
            for level in self.config.levels:
                record = CompileRecord(compiler=compiler.name, level=level, ok=False)
                records.append(record)
                if kernel is None:
                    record.error = frontend.errors.get(
                        compiler.kind, "front-end failure"
                    )
                    continue
                token = compiler.cache_token(level) if share else str(level)
                unit_key = (compiler.name, token)
                leader = leaders.get(unit_key)
                if leader is not None:
                    record.shared = True
                    followers.append((record, leader, compiler))
                    continue
                leaders[unit_key] = record
                units.append(
                    (
                        record,
                        compiler,
                        kernel,
                        frontend.fingerprints[compiler.kind],
                        token,
                    )
                )

        def compile_unit(
            unit: tuple[CompileRecord, Compiler, ir.Kernel, str, str]
        ) -> None:
            record, compiler, kernel, fingerprint, token = unit
            try:
                if self.cache is not None:
                    binary, hit = compiler.compile_kernel_cached(
                        kernel, record.level, self.cache, fingerprint, token
                    )
                    record.cache_hit = hit
                else:
                    binary = compiler.compile_kernel(kernel, record.level)
                record.binary = binary
                record.ok = True
            except CompileError as e:
                record.error = str(e)

        if pool is not None and len(units) > 1:
            list(pool.map(compile_unit, units))
        else:
            for unit in units:
                compile_unit(unit)

        for record, leader, compiler in followers:
            record.error = leader.error
            if not leader.ok:
                continue
            record.ok = True
            record.cache_hit = leader.cache_hit
            record.binary = self._rebind(compiler, leader.binary, record.level)
        return records

    @staticmethod
    def _rebind(compiler: Compiler, binary: Binary, level: OptLevel) -> Binary:
        """A sibling level's binary with this level's metadata attached."""
        if binary.level is level:
            return binary
        return replace(
            binary, level=level, flags=_flags_or(compiler.name, level, binary.flags)
        )

    # -- execute stage -----------------------------------------------------------

    def _execute_stage(
        self,
        compiles: list[CompileRecord],
        inputs: tuple,
        pool: ThreadPoolExecutor | None,
    ) -> dict[str, ExecuteRecord]:
        """Run every compiled binary, sharing content-identical executions.

        Two binaries whose optimized kernel and FP environment are
        content-equal are observationally the same machine program — one
        interpreter run serves all their labels (bit-identical by the
        worker's purity guarantee).  Grouping spans compilers: gcc and
        clang frequently converge to the same optimized kernel on
        fold-free programs.
        """
        share = self.engine_config.share_runs
        max_steps = self.config.max_steps
        groups: dict[object, list[CompileRecord]] = {}
        kernel_fps: dict[int, str] = {}
        for record in compiles:
            if not record.ok:
                continue
            if share:
                kid = id(record.binary.kernel)
                fp = kernel_fps.get(kid)
                if fp is None:
                    fp = kernel_fingerprint(record.binary.kernel)
                    kernel_fps[kid] = fp
                key: object = (fp, env_fingerprint(record.binary.env))
            else:
                key = record.label
            groups.setdefault(key, []).append(record)

        ordered = list(groups.values())
        self._total_runs += sum(len(members) for members in ordered)
        self._shared_runs += sum(len(members) - 1 for members in ordered)

        def run_group(members: list[CompileRecord]) -> ExecutionResult:
            binary = members[0].binary
            return run_kernel(binary.kernel, binary.env, inputs, max_steps)

        if pool is not None and len(ordered) > 1:
            results = list(pool.map(run_group, ordered))
        else:
            results = [run_group(members) for members in ordered]

        executions: dict[str, ExecuteRecord] = {}
        for members, result in zip(ordered, results):
            for pos, record in enumerate(members):
                executions[record.label] = ExecuteRecord(
                    label=record.label, result=result, shared=pos > 0
                )
        return executions

    # -- collect + compare stages ------------------------------------------------

    def _collect(
        self,
        compiles: list[CompileRecord],
        executions: dict[str, ExecuteRecord],
        outcome: ProgramOutcome,
    ) -> dict[tuple[str, OptLevel], _BinaryRun]:
        """Fill the outcome's per-binary dicts in legacy matrix order."""
        runs: dict[tuple[str, OptLevel], _BinaryRun] = {}
        for record in compiles:
            label = record.label
            outcome.compiled[label] = record.ok
            if not record.ok:
                continue
            result = executions[label].result
            outcome.ran[label] = result.ok
            if result.ok:
                sig = result.signature()
                runs[(record.compiler, record.level)] = _BinaryRun(
                    sig, result.value, result.printed
                )
                if sig is not None:
                    outcome.signatures[label] = sig
                    outcome.values[label] = result.value
        return runs

    def _compare_stage(
        self,
        index: int,
        runs: dict[tuple[str, OptLevel], _BinaryRun],
        outcome: ProgramOutcome,
    ) -> None:
        for level in self.config.levels:
            for ca, cb in combinations(self.compilers, 2):
                ra = runs.get((ca.name, level))
                rb = runs.get((cb.name, level))
                if ra is None or rb is None or ra.signature is None or rb.signature is None:
                    continue  # not comparable; still in the denominator
                consistent = ra.signature == rb.signature
                if consistent:
                    outcome.comparisons.append(
                        ComparisonRecord(index, ca.name, cb.name, level, True)
                    )
                    continue
                va, vb = _differing_values(ra, rb)
                outcome.comparisons.append(
                    ComparisonRecord(
                        index,
                        ca.name,
                        cb.name,
                        level,
                        False,
                        value_a=va,
                        value_b=vb,
                        digit_diff=_diffing_digits(va, vb),
                    )
                )


def _differing_values(
    ra: _BinaryRun, rb: _BinaryRun
) -> tuple[float | None, float | None]:
    """The first printed pair whose encodings differ (fallback: finals).

    The fallback can surface ``None`` finals — e.g. one run printed
    nothing while the other printed values — which downstream code must
    treat as a sentinel, not a number.
    """
    for a, b in zip(ra.printed, rb.printed):
        if _value_hex(a) != _value_hex(b):
            return a, b
    return ra.value, rb.value  # different print counts: compare finals


def _diffing_digits(a: float | None, b: float | None) -> int:
    """Differing hex digits; 0 when either side has no final value (the
    sentinel comparison for runs that differ only in print count)."""
    if a is None or b is None:
        return 0
    return digit_difference(_value_hex(a), _value_hex(b))
