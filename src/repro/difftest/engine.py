"""The staged campaign engine (paper Figure 1, decomposed).

The original :func:`~repro.difftest.harness.run_campaign` was one
monolithic loop: generate a program, then serially compile and run every
(compiler, level) pair from scratch.  This module splits that loop into
five explicit stages with typed per-stage records and makes the
compile+execute matrix — the embarrassingly parallel middle of the loop —
cacheable and concurrently schedulable:

* **generate** — ask the generator for the next program.  Stays serial:
  the feedback loop (triggering programs re-seed the generator) makes
  program *i+1* depend on the verdict for program *i*.
* **frontend** — parse / sema / lower once per target kind
  (:class:`~repro.toolchains.base.CompilerKind`); host compilers share the
  C parse, the device compiler gets the CUDA translation.
* **compile** — one :class:`CompileRecord` per (compiler, level).  Work is
  deduplicated two ways: levels whose (pipeline, environment) coincide
  share one compilation (``Compiler.cache_token``), and a campaign-wide
  content-addressed :class:`~repro.toolchains.cache.CompileCache` means a
  structurally identical kernel anywhere in the campaign never recompiles.
* **execute** — one :class:`ExecuteRecord` per compiled binary.  Binaries
  whose optimized kernel and FP environment are content-identical produce
  bit-identical results (the interpreter is deterministic), so each
  distinct (kernel, environment) group runs once and the result is shared
  across its labels.
* **compare** — pairwise bitwise comparison at each level, unchanged
  semantics.

Distinct compile and execute units fan out to an
:class:`~repro.difftest.backend.ExecutionBackend` — ``serial`` (inline),
``thread`` (GIL-bound scheduling slack), or ``process`` (true multi-core:
execute tasks ship to a :class:`~concurrent.futures.ProcessPoolExecutor`
as picklable specs through the pure ``execution/worker`` entry point).
Results are gathered in matrix order and every record dict is filled in
the same deterministic order as the serial loop, so a
:class:`CampaignResult` is byte-identical across backends, job counts and
cache configurations — only the stage timings differ.

Two campaign-scale facilities ride on that determinism:

* **resume** — give :meth:`CampaignEngine.run` a
  :class:`~repro.difftest.store.CampaignStore` and every completed
  program is checkpointed to JSONL; an interrupted campaign replays the
  cheap generate stage (restoring the generator's feedback state from the
  stored verdicts) and recomputes only unfinished programs.
* **sharding** — ``shard i/n`` deterministically partitions the budget by
  ``index % n`` so n machines produce disjoint shards whose
  :func:`~repro.difftest.store.merge_shards` union is bit-identical to
  an unsharded run.  Requires a feedback-free generator (with feedback,
  program *i+1* depends on verdicts the shard does not compute).

Note on throughput: with the ``thread`` backend the measured gains
(>= 2x on the substrate workload, ``benchmarks/bench_engine.py``) come
from the *dedup* — level-class compilation sharing, the cross-program
cache, and identical-binary run sharing — because the stages are pure
Python and CPython's GIL serializes thread workers.  The ``process``
backend adds real CPU parallelism on top for the execute stage, which
dominates campaign wall-clock.
"""

from __future__ import annotations

import json
import os
import sys
from collections import Counter
from dataclasses import dataclass, field, replace
from itertools import combinations

from repro.difftest.backend import (
    BACKENDS,
    ExecutionBackend,
    create_backend,
    resolve_jobs,
)
from repro.difftest.classify import devectorized_fingerprint
from repro.difftest.compare import digit_difference
from repro.difftest.config import CampaignConfig
from repro.difftest.record import CampaignResult, ComparisonRecord, ProgramOutcome
from repro.errors import CompileError, ReproError
from repro.execution.batch import DEFAULT_EXEC_MODE, EXEC_MODES, run_batch_task
from repro.execution.result import ExecutionResult, _value_hex
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.generation.islands import IslandCoordinator
from repro.generation.program import (
    GeneratedProgram,
    ProgramGenerator,
    generator_capabilities,
    observe_outcome,
)
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.tiers import shape_vector, structural_tag_from_shapes
from repro.toolchains.base import Binary, Compiler, CompilerKind, _flags_or
from repro.toolchains.cache import (
    CompileCache,
    env_fingerprint,
    kernel_fingerprint,
    scalar_env_fingerprint,
)
from repro.toolchains.cuda import translate_to_cuda
from repro.toolchains.optlevels import OptLevel
from repro.utils.timing import Stopwatch

__all__ = [
    "EngineConfig",
    "FrontendRecord",
    "CompileRecord",
    "ExecuteRecord",
    "CampaignEngine",
    "JsonLineProgress",
    "STAGES",
    "frontend_kernels",
]

#: Stage names in pipeline order (the report's time buckets).
STAGES = ("generate", "frontend", "compile", "execute", "compare")


class JsonLineProgress:
    """Machine-readable campaign progress: one JSON line per program.

    A drop-in for the ``progress`` callback of :meth:`CampaignEngine.run`
    that emits ``{"event": "program", "index": ..., "done": ...,
    "budget": ..., "triggered": ..., "inconsistencies": ...}`` per
    completed program (and a final ``campaign-done`` line from
    :meth:`finish`), flushed immediately so a supervising process can
    consume the stream live.  ``llm4fp run --progress-json`` wires this
    to stderr; the fleet supervisor primarily heartbeats on checkpoint
    tail growth (which survives worker death), with these lines as the
    finer-grained, human-greppable view in per-worker logs.

    ``done`` counts programs this process completed, which under
    ``--shard i/n`` differs from ``index`` (shards skip unowned indices).
    """

    def __init__(self, budget: int, stream=None) -> None:
        self.budget = budget
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.triggered = 0
        self.inconsistencies = 0

    def _emit(self, record: dict) -> None:
        self.stream.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.stream.flush()

    def __call__(self, index: int, outcome: ProgramOutcome) -> None:
        self.done += 1
        self.triggered += bool(outcome.triggered)
        self.inconsistencies += len(outcome.inconsistent_comparisons)
        self._emit(
            {
                "event": "program",
                "index": index,
                "done": self.done,
                "budget": self.budget,
                "triggered": bool(outcome.triggered),
                "inconsistencies": self.inconsistencies,
            }
        )

    def finish(self) -> None:
        self._emit(
            {
                "event": "campaign-done",
                "done": self.done,
                "budget": self.budget,
                "triggering_programs": self.triggered,
                "inconsistencies": self.inconsistencies,
            }
        )


@dataclass(frozen=True)
class EngineConfig:
    """Execution knobs of the engine (orthogonal to the campaign config).

    Attributes:
        jobs: workers fanning out the per-program compile+execute matrix;
            ``1`` runs every stage inline, ``"auto"`` uses one worker per
            CPU.  What a worker *is* depends on ``backend``.
        compile_cache: keep a campaign-wide content-addressed cache of
            compiled binaries (kernel fingerprint x compiler x level class).
        cache_capacity: LRU bound of that cache, in binaries.
        share_runs: deduplicate work *within* one program's matrix — levels
            with identical pipelines compile once, and binaries with
            content-identical (optimized kernel, environment) execute once.
            Disabling both knobs reproduces the legacy serial cost model
            exactly (used as the benchmark baseline).
        backend: fan-out policy — ``"serial"`` (inline, requires jobs=1),
            ``"thread"`` (GIL-bound thread pool, the historical behaviour)
            or ``"process"`` (multi-core process pool for the execute
            stage).  Results are byte-identical across all three.
        shard_index / shard_count: run only budget indices where
            ``index % shard_count == shard_index``; disjoint shards merge
            to the unsharded result (:func:`repro.difftest.store.merge_shards`).
        islands: ``0`` (off) replays the whole generation stream on every
            shard (feedback-free generators only); ``n >= 1`` partitions
            *generation itself* into ``n`` islands (budget index ``i``
            belongs to island ``i % n``), each evolving its own population
            — the sharding mode that admits feedback generators.  A
            sharded island campaign needs ``islands == shard_count``.
        merge_every: island merge-point cadence — after every
            ``merge_every`` owned programs an island exports its top
            triggers and imports its lower-numbered peers' same-generation
            exports (see :mod:`repro.generation.islands`).
        island_peers: sibling checkpoint paths (one per island, island
            order) for a *sharded* island campaign; how concurrently
            running shards find each other's merge-point exports.
        exec_mode: how the execute stage runs kernels — ``"tape"``
            (compiled register-machine tapes, the default), ``"tree"``
            (the reference tree-walk interpreter) or ``"check"`` (both,
            raising :class:`~repro.errors.ExecutionDivergence` on any bit
            of disagreement).  All three produce byte-identical campaign
            results; ``REPRO_EXEC_MODE`` overrides the default.
    """

    jobs: int | str = 1
    compile_cache: bool = True
    cache_capacity: int = 4096
    share_runs: bool = True
    backend: str = "thread"
    shard_index: int = 0
    shard_count: int = 1
    islands: int = 0
    merge_every: int = 25
    island_peers: tuple = ()
    exec_mode: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXEC_MODE", DEFAULT_EXEC_MODE)
    )

    def __post_init__(self) -> None:
        resolve_jobs(self.jobs)  # validates int >= 1 or "auto"
        if self.exec_mode not in EXEC_MODES:
            raise ValueError(
                f"exec_mode must be one of {', '.join(EXEC_MODES)}, "
                f"got {self.exec_mode!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.backend == "serial" and resolve_jobs(self.jobs) != 1:
            raise ValueError("the serial backend runs inline; use jobs=1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), "
                f"got {self.shard_index}"
            )
        if self.islands < 0:
            raise ValueError("islands must be >= 0 (0 disables the island model)")
        if self.merge_every < 1:
            raise ValueError("merge_every must be >= 1")
        if self.islands and self.shard_count > 1 and self.islands != self.shard_count:
            raise ValueError(
                "sharded island campaigns need one island per shard: "
                f"islands={self.islands}, shard_count={self.shard_count}"
            )
        if self.island_peers and not self.islands:
            raise ValueError("island_peers given but islands=0")

    @property
    def resolved_jobs(self) -> int:
        """The effective worker count (``"auto"`` resolved to CPU count)."""
        return resolve_jobs(self.jobs)

    def owns(self, index: int) -> bool:
        """Whether this shard tests budget index ``index``."""
        return index % self.shard_count == self.shard_index


@dataclass
class FrontendRecord:
    """Per-kind front-end artefacts of one program."""

    kernels: dict[CompilerKind, ir.Kernel] = field(default_factory=dict)
    fingerprints: dict[CompilerKind, str] = field(default_factory=dict)
    errors: dict[CompilerKind, str] = field(default_factory=dict)


@dataclass
class CompileRecord:
    """One (compiler, level) cell of the compile stage."""

    compiler: str
    level: OptLevel
    ok: bool
    binary: Binary | None = None
    cache_hit: bool = False
    shared: bool = False  # reused a sibling level's compilation
    error: str | None = None

    @property
    def label(self) -> str:
        return f"{self.compiler}/{self.level}"


@dataclass
class ExecuteRecord:
    """One binary's execution, possibly shared across identical binaries."""

    label: str
    result: ExecutionResult
    shared: bool = False  # served by another label's identical run


@dataclass
class _BinaryRun:
    """Signature + values of one successful execution (compare-stage view)."""

    signature: str | None
    value: float | None
    printed: tuple[float, ...] = ()
    #: per-tier structural shapes of the optimized kernel under its
    #: environment (divergence-tier registry order), the content hash of
    #: its vector-stripped body, and the environment's *scalar* identity
    #: — used to tag structural inconsistencies in the compare stage
    shapes: tuple = ()
    devec_fp: str = ""
    env_key: tuple = ()


def frontend_kernels(source: str) -> FrontendRecord:
    """Front-end ``source`` once per target kind (§2.4).

    Host compilers share the C parse/sema/lowering; the device compiler
    gets the CUDA translation of the same unit.  A front-end failure for a
    kind fails all its compilations, recorded per-kind in ``errors``.
    Shared by the engine's frontend stage and by the triage subsystem
    (reduction re-validation and pass-pipeline bisection replay).
    """
    record = FrontendRecord()
    try:
        unit = parse_program(source)
        sema = check_program(unit)
        record.kernels[CompilerKind.HOST] = lower_compute(sema)
    except ReproError as e:
        record.errors[CompilerKind.HOST] = str(e)
        record.errors.setdefault(CompilerKind.DEVICE, str(e))
        return record
    try:
        cuda_unit = translate_to_cuda(unit)
        cuda_sema = check_program(cuda_unit)
        record.kernels[CompilerKind.DEVICE] = lower_compute(cuda_sema)
    except ReproError as e:
        record.errors[CompilerKind.DEVICE] = str(e)
    for kind, kernel in record.kernels.items():
        record.fingerprints[kind] = kernel_fingerprint(kernel)
    return record


def _check_replay(
    index: int, stored: ProgramOutcome, program: GeneratedProgram
) -> None:
    """A checkpointed outcome must describe the program the generator just
    replayed — otherwise the store belongs to a different campaign/seed."""
    if stored.program.source != program.source:
        raise ValueError(
            f"checkpoint mismatch at program {index}: stored source differs "
            "from the regenerated program (wrong store for this "
            "approach/seed/config?)"
        )


def _validate_compilers(compilers: list[Compiler]) -> None:
    if len(compilers) < 2:
        names = ", ".join(c.name for c in compilers) or "none"
        raise ValueError(
            "differential testing needs at least two compilers, "
            f"got {len(compilers)} ({names})"
        )
    counts = Counter(c.name for c in compilers)
    dupes = sorted(name for name, n in counts.items() if n > 1)
    if dupes:
        raise ValueError(
            "compiler names must be unique; "
            f"got {len(compilers)} compilers with duplicate name(s): "
            f"{', '.join(dupes)}"
        )


class CampaignEngine:
    """Runs campaigns as explicit generate/frontend/compile/execute/compare
    stages over a fixed compiler matrix.

    The engine owns the campaign-wide compile cache and the within-matrix
    dedup; :class:`EngineConfig` selects the fan-out backend, worker
    count, sharding and caching.  Results are byte-identical across every
    backend/jobs/cache configuration — only stage timings differ.

    Typical use::

        engine = CampaignEngine(
            default_compilers(),
            CampaignConfig(budget=200),
            EngineConfig(backend="process", jobs="auto"),
        )
        result = engine.run(make_generator("loops", SplittableRng(1)))

    ``run`` drives a generator through the full budget (optionally
    checkpointed via a :class:`~repro.difftest.store.CampaignStore`);
    ``test_program`` pushes a single already-generated program through
    the frontend/compile/execute/compare stages.
    """

    def __init__(
        self,
        compilers: list[Compiler],
        config: CampaignConfig | None = None,
        engine_config: EngineConfig | None = None,
        cache: CompileCache | None = None,
    ) -> None:
        _validate_compilers(compilers)
        self.compilers = list(compilers)
        profiles = {getattr(c, "tiers", "baseline") for c in self.compilers}
        if len(profiles) > 1:
            raise ValueError(
                "compilers disagree on the divergence-tier profile "
                f"({', '.join(sorted(profiles))}); structural tags are only "
                "meaningful when every side compiles under one profile"
            )
        #: the campaign's divergence-tier profile (uniform across compilers)
        self.tiers = profiles.pop()
        self.config = config or CampaignConfig()
        self.engine_config = engine_config or EngineConfig()
        if cache is not None:
            self.cache: CompileCache | None = cache
        elif self.engine_config.compile_cache:
            self.cache = CompileCache(self.engine_config.cache_capacity)
        else:
            self.cache = None
        #: within-program dedup counters (aggregated into CampaignResult)
        self._shared_runs = 0
        self._total_runs = 0

    # -- campaign loop -----------------------------------------------------------

    def run(
        self,
        generator: ProgramGenerator,
        progress: object = None,
        store: object = None,
    ) -> CampaignResult:
        """Run one approach's full campaign (Figure 1's outer loop).

        ``progress``, if given, is called as ``progress(i, outcome)`` after
        each program.  Generation stays serial (the feedback loop is a
        sequential dependency); each program's matrix fans out through the
        configured :class:`~repro.difftest.backend.ExecutionBackend`.

        ``store``, if given, is a
        :class:`~repro.difftest.store.CampaignStore`: completed programs
        already checkpointed there are *replayed* — the generate stage
        still runs (restoring generator and feedback state), but the
        matrix is served from the stored outcome — and freshly tested
        programs are appended, so an interrupted campaign resumes from
        the last completed program bit-identically.

        When the engine is classically sharded (``shard_count > 1``,
        ``islands == 0``) only owned budget indices are tested; generation
        still covers every index so all shards see the identical program
        stream.  Classically sharding a feedback generator is rejected:
        its stream depends on verdicts other shards would compute — use
        the island model (``islands == shard_count``), which partitions
        generation itself so feedback stays island-local.
        """
        config = self.config
        ec = self.engine_config
        caps = generator_capabilities(generator)
        if ec.shard_count > 1 and caps.feedback and not ec.islands:
            raise ValueError(
                "cannot shard a feedback generator classically: program i+1 "
                "depends on verdicts for earlier programs, which other shards "
                "compute; run it as an island campaign (--islands "
                f"{ec.shard_count}) or use shard_count=1"
            )
        if ec.islands and ec.shard_count > 1 and store is None:
            raise ValueError(
                "sharded island campaigns need a checkpoint store: islands "
                "exchange migrants through sibling shards' checkpoint files"
            )
        result = CampaignResult(
            approach=getattr(generator, "name", type(generator).__name__),
            budget=config.budget,
            levels=config.levels,
            compilers=tuple(c.name for c in self.compilers),
            shard_index=ec.shard_index,
            shard_count=ec.shard_count,
            tiers=self.tiers,
        )
        done: dict[int, ProgramOutcome] = {}
        if store is not None:
            done = store.open(self._store_header(result))
        coordinator: IslandCoordinator | None = None
        if ec.islands:
            coordinator = IslandCoordinator(
                generator,
                islands=ec.islands,
                merge_every=ec.merge_every,
                seed=config.seed,
                shard_index=ec.shard_index,
                shard_count=ec.shard_count,
                peer_paths=ec.island_peers,
                existing_records=(
                    store.island_records if store is not None else ()
                ),
            )
        sw = Stopwatch()
        # Snapshot lifetime counters so a reused engine (warm shared cache,
        # prior test_program calls) reports per-run deltas, not totals.
        runs_before = (self._shared_runs, self._total_runs)
        cache_before = self.cache.stats() if self.cache is not None else None
        with create_backend(ec.backend, ec.jobs) as backend:
            for i in range(config.budget):
                if coordinator is None:
                    # Classic mode: every shard replays the whole stream.
                    with sw.phase("generate"):
                        program = generator.generate()
                    if not ec.owns(i):
                        continue
                elif not ec.owns(i):
                    # Island mode: unowned indices belong to another
                    # shard's island — not generated here at all.
                    continue
                else:
                    with sw.phase("generate"):
                        program = coordinator.generate(i)
                prior = done.get(i)
                if prior is not None:
                    _check_replay(i, prior, program)
                    outcome = prior
                else:
                    outcome = self.test_program(
                        i, program, _sw=sw, _backend=backend
                    )
                if coordinator is None:
                    observe_outcome(generator, outcome)
                    island_records: list[dict] = []
                else:
                    island_records = coordinator.observe(i, outcome)
                if prior is None and store is not None:
                    store.append(outcome)
                if store is not None:
                    # After the boundary outcome is durable, never before:
                    # a sibling island polling this file must not see the
                    # export ahead of the outcomes that produced it.
                    for record in island_records:
                        store.append_island(record)
                if coordinator is not None:
                    coordinator.complete_boundary(i)
                result.outcomes.append(outcome)
                if progress is not None:
                    progress(i, outcome)
        self._charge(result, sw, generator, runs_before, cache_before)
        return result

    def _store_header(self, result: CampaignResult) -> dict:
        """Identity of this campaign for checkpoint validation."""
        header = {
            "approach": result.approach,
            "budget": result.budget,
            "levels": [str(level) for level in result.levels],
            "compilers": list(result.compilers),
            "seed": self.config.seed,
            "max_steps": self.config.max_steps,
            "shard_index": self.engine_config.shard_index,
            "shard_count": self.engine_config.shard_count,
            # 0/0 when the island model is off, matching what pre-v4
            # headers imply — so old checkpoints resume cleanly.
            "islands": self.engine_config.islands,
            "merge_every": (
                self.engine_config.merge_every if self.engine_config.islands else 0
            ),
        }
        # Written only when non-default, like the island fields' 0/0
        # convention: baseline headers stay byte-identical to pre-tier
        # checkpoints, which therefore resume cleanly.
        if self.tiers != "baseline":
            header["tiers"] = self.tiers
        return header

    def _charge(
        self,
        result: CampaignResult,
        sw: Stopwatch,
        generator: ProgramGenerator,
        runs_before: tuple[int, int],
        cache_before,
    ) -> None:
        result.generation_seconds = sw.buckets.get("generate", 0.0)
        result.frontend_seconds = sw.buckets.get("frontend", 0.0)
        result.compile_seconds = sw.buckets.get("compile", 0.0)
        result.execute_seconds = sw.buckets.get("execute", 0.0)
        result.compare_seconds = sw.buckets.get("compare", 0.0)
        if self.cache is not None:
            stats = self.cache.stats()
            result.cache_hits = stats.hits - (cache_before.hits if cache_before else 0)
            result.cache_misses = stats.misses - (
                cache_before.misses if cache_before else 0
            )
        result.shared_runs = self._shared_runs - runs_before[0]
        result.total_runs = self._total_runs - runs_before[1]
        llm = getattr(generator, "llm", None)
        if llm is not None:
            result.llm_latency_seconds = getattr(
                llm, "simulated_latency_seconds", 0.0
            )

    # -- one program -------------------------------------------------------------

    def test_program(
        self,
        index: int,
        program: GeneratedProgram,
        _sw: Stopwatch | None = None,
        _backend: ExecutionBackend | None = None,
    ) -> ProgramOutcome:
        """Run one program through frontend/compile/execute/compare."""
        sw = _sw if _sw is not None else Stopwatch()
        outcome = ProgramOutcome(index=index, program=program)
        with sw.phase("frontend"):
            frontend = self._frontend_stage(program.source)
        with sw.phase("compile"):
            compiles = self._compile_stage(frontend, _backend)
        with sw.phase("execute"):
            executions = self._execute_stage(compiles, program.inputs, _backend)
        with sw.phase("compare"):
            runs = self._collect(compiles, executions, outcome)
            self._compare_stage(index, runs, outcome)
            outcome.triggered = any(not c.consistent for c in outcome.comparisons)
        return outcome

    # -- frontend stage ----------------------------------------------------------

    def _frontend_stage(self, source: str) -> FrontendRecord:
        return frontend_kernels(source)

    # -- compile stage -----------------------------------------------------------

    def _compile_stage(
        self, frontend: FrontendRecord, backend: ExecutionBackend | None
    ) -> list[CompileRecord]:
        """Compile the full (compiler, level) matrix, deduplicated.

        Returns records in matrix order (compilers outer, levels inner).
        Each (compiler, cache-token) equivalence class compiles at most
        once; follower levels rebind the leader's binary to their own
        level metadata.  Distinct leader compilations fan out through the
        backend's in-process scheduler (compilations must stay in the
        parent so the shared compile cache observes them).
        """
        share = self.engine_config.share_runs
        records: list[CompileRecord] = []
        leaders: dict[tuple[str, str], CompileRecord] = {}
        followers: list[tuple[CompileRecord, CompileRecord, Compiler]] = []
        units: list[tuple[CompileRecord, Compiler, ir.Kernel, str, str]] = []
        for compiler in self.compilers:
            kernel = frontend.kernels.get(compiler.kind)
            for level in self.config.levels:
                record = CompileRecord(compiler=compiler.name, level=level, ok=False)
                records.append(record)
                if kernel is None:
                    record.error = frontend.errors.get(
                        compiler.kind, "front-end failure"
                    )
                    continue
                token = compiler.cache_token(level) if share else str(level)
                unit_key = (compiler.name, token)
                leader = leaders.get(unit_key)
                if leader is not None:
                    record.shared = True
                    followers.append((record, leader, compiler))
                    continue
                leaders[unit_key] = record
                units.append(
                    (
                        record,
                        compiler,
                        kernel,
                        frontend.fingerprints[compiler.kind],
                        token,
                    )
                )

        def compile_unit(
            unit: tuple[CompileRecord, Compiler, ir.Kernel, str, str]
        ) -> None:
            record, compiler, kernel, fingerprint, token = unit
            try:
                if self.cache is not None:
                    binary, hit = compiler.compile_kernel_cached(
                        kernel, record.level, self.cache, fingerprint, token
                    )
                    record.cache_hit = hit
                else:
                    binary = compiler.compile_kernel(kernel, record.level)
                record.binary = binary
                record.ok = True
            except CompileError as e:
                record.error = str(e)

        if backend is not None and len(units) > 1:
            backend.map_inline(compile_unit, units)
        else:
            for unit in units:
                compile_unit(unit)

        for record, leader, compiler in followers:
            record.error = leader.error
            if not leader.ok:
                continue
            record.ok = True
            record.cache_hit = leader.cache_hit
            record.binary = self._rebind(compiler, leader.binary, record.level)
        return records

    @staticmethod
    def _rebind(compiler: Compiler, binary: Binary, level: OptLevel) -> Binary:
        """A sibling level's binary with this level's metadata attached."""
        if binary.level is level:
            return binary
        return replace(
            binary, level=level, flags=_flags_or(compiler.name, level, binary.flags)
        )

    # -- execute stage -----------------------------------------------------------

    def _execute_stage(
        self,
        compiles: list[CompileRecord],
        inputs: tuple,
        backend: ExecutionBackend | None,
    ) -> dict[str, ExecuteRecord]:
        """Run every compiled binary, sharing content-identical executions.

        Two binaries whose optimized kernel and FP environment are
        content-equal are observationally the same machine program — one
        interpreter run serves all their labels (bit-identical by the
        worker's purity guarantee).  Grouping spans compilers: gcc and
        clang frequently converge to the same optimized kernel on
        fold-free programs.

        Each distinct group becomes one picklable
        :data:`~repro.execution.batch.BatchTask` carrying the engine's
        exec mode and the group's content key (seeding the per-process
        tape cache); the backend decides whether those run inline, on
        threads, or across processes, and always returns results in task
        order.
        """
        share = self.engine_config.share_runs
        max_steps = self.config.max_steps
        groups: dict[object, list[CompileRecord]] = {}
        kernel_fps: dict[int, str] = {}
        for record in compiles:
            if not record.ok:
                continue
            if share:
                kid = id(record.binary.kernel)
                fp = kernel_fps.get(kid)
                if fp is None:
                    fp = kernel_fingerprint(record.binary.kernel)
                    kernel_fps[kid] = fp
                key: object = (fp, env_fingerprint(record.binary.env))
            else:
                key = record.label
            groups.setdefault(key, []).append(record)

        ordered = list(groups.values())
        self._total_runs += sum(len(members) for members in ordered)
        self._shared_runs += sum(len(members) - 1 for members in ordered)

        mode = self.engine_config.exec_mode
        tasks = []
        for key, members in groups.items():
            binary = members[0].binary
            # Label keys (share_runs off) are not content-addressed; let
            # the batch layer derive the tape-cache key on demand.
            cache_key = key if share else None
            tasks.append((binary.kernel, binary.env, (inputs,), max_steps, mode, cache_key))
        if backend is not None and len(tasks) > 1:
            batches = backend.run_batches(tasks)
        else:
            batches = [run_batch_task(task) for task in tasks]

        executions: dict[str, ExecuteRecord] = {}
        for members, (result,) in zip(ordered, batches):
            for pos, record in enumerate(members):
                executions[record.label] = ExecuteRecord(
                    label=record.label, result=result, shared=pos > 0
                )
        return executions

    # -- collect + compare stages ------------------------------------------------

    def _collect(
        self,
        compiles: list[CompileRecord],
        executions: dict[str, ExecuteRecord],
        outcome: ProgramOutcome,
    ) -> dict[tuple[str, OptLevel], _BinaryRun]:
        """Fill the outcome's per-binary dicts in legacy matrix order."""
        runs: dict[tuple[str, OptLevel], _BinaryRun] = {}
        # (kernel identity, environment content) -> (per-tier shapes,
        # devectorized fingerprint), memoized: sibling levels share the
        # optimized kernel object and usually the environment too.  The
        # environment is part of the key because the vec-libm tier's
        # shape depends on which vector math library the binary links.
        shapes: dict[tuple, tuple] = {}
        for record in compiles:
            label = record.label
            outcome.compiled[label] = record.ok
            if not record.ok:
                continue
            result = executions[label].result
            outcome.ran[label] = result.ok
            if result.ok:
                sig = result.signature()
                kernel = record.binary.kernel
                env = record.binary.env
                env_fp = env_fingerprint(env)
                memo_key = (id(kernel), env_fp)
                cached = shapes.get(memo_key)
                if cached is None:
                    cached = (
                        shape_vector(kernel, env),
                        devectorized_fingerprint(kernel),
                    )
                    shapes[memo_key] = cached
                runs[(record.compiler, record.level)] = _BinaryRun(
                    sig,
                    result.value,
                    result.printed,
                    shapes=cached[0],
                    devec_fp=cached[1],
                    # Scalar projection: a vec-libm difference is the
                    # vec-libm *tier's* finding, not an environment
                    # difference that disqualifies structural tagging.
                    env_key=scalar_env_fingerprint(env),
                )
                if sig is not None:
                    outcome.signatures[label] = sig
                    outcome.values[label] = result.value
        return runs

    def _compare_stage(
        self,
        index: int,
        runs: dict[tuple[str, OptLevel], _BinaryRun],
        outcome: ProgramOutcome,
    ) -> None:
        for level in self.config.levels:
            for ca, cb in combinations(self.compilers, 2):
                ra = runs.get((ca.name, level))
                rb = runs.get((cb.name, level))
                if ra is None or rb is None or ra.signature is None or rb.signature is None:
                    continue  # not comparable; still in the denominator
                consistent = ra.signature == rb.signature
                if consistent:
                    outcome.comparisons.append(
                        ComparisonRecord(index, ca.name, cb.name, level, True)
                    )
                    continue
                va, vb = _differing_values(ra, rb)
                outcome.comparisons.append(
                    ComparisonRecord(
                        index,
                        ca.name,
                        cb.name,
                        level,
                        False,
                        value_a=va,
                        value_b=vb,
                        digit_diff=_diffing_digits(va, vb),
                        tag=structural_tag_from_shapes(
                            ra.shapes,
                            rb.shapes,
                            ra.env_key == rb.env_key,
                            ra.devec_fp == rb.devec_fp,
                        ),
                    )
                )


def _differing_values(
    ra: _BinaryRun, rb: _BinaryRun
) -> tuple[float | None, float | None]:
    """The first printed pair whose encodings differ (fallback: finals).

    The fallback can surface ``None`` finals — e.g. one run printed
    nothing while the other printed values — which downstream code must
    treat as a sentinel, not a number.
    """
    for a, b in zip(ra.printed, rb.printed):
        if _value_hex(a) != _value_hex(b):
            return a, b
    return ra.value, rb.value  # different print counts: compare finals


def _diffing_digits(a: float | None, b: float | None) -> int:
    """Differing hex digits; 0 when either side has no final value (the
    sentinel comparison for runs that differ only in print count)."""
    if a is None or b is None:
        return 0
    return digit_difference(_value_hex(a), _value_hex(b))
