"""Campaign fleet supervision: ``llm4fp serve``.

Shards, crash-safe resume and bit-identical :func:`merge_shards` turned
one campaign into N independent workers — but left a human as the
scheduler.  This package is the scheduler: an asyncio supervisor that
launches one ``llm4fp run --shard i/n --resume`` worker per shard,
heartbeats each on its checkpoint file's tail growth, kills and
reassigns dead or stalled shards (bounded retries, exponential backoff,
then an honest partial verdict), splices the finished shard checkpoints
into a merged store byte-identical to an unkilled single-process run,
and records everything it did to a structured ``fleet_events.jsonl``.

Layering:

* :mod:`repro.fleet.targets` — where workers run: the
  :class:`~repro.fleet.targets.WorkerTarget` ABC and the local
  subprocess implementation (ssh/container targets slot in behind the
  same two-method surface).
* :mod:`repro.fleet.events` — the append-only fleet event log.
* :mod:`repro.fleet.supervisor` — the supervisor loop itself plus the
  :class:`~repro.fleet.supervisor.CampaignSpec` /
  :class:`~repro.fleet.supervisor.FleetConfig` knobs.
* :mod:`repro.fleet.queue` — queue mode: drain a JSONL job file,
  campaign after campaign, keeping the worker pool saturated.
"""

from repro.fleet.events import FleetEventLog, read_events
from repro.fleet.queue import drain_queue, load_jobs
from repro.fleet.supervisor import (
    CampaignSpec,
    FleetConfig,
    FleetResult,
    FleetSupervisor,
    ShardState,
    run_fleet,
)
from repro.fleet.targets import LocalProcessTarget, WorkerHandle, WorkerTarget

__all__ = [
    "CampaignSpec",
    "FleetConfig",
    "FleetEventLog",
    "FleetResult",
    "FleetSupervisor",
    "LocalProcessTarget",
    "ShardState",
    "WorkerHandle",
    "WorkerTarget",
    "drain_queue",
    "load_jobs",
    "read_events",
    "run_fleet",
]
