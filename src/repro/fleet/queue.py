"""Queue mode: drain a JSONL job file, campaign after campaign.

``llm4fp serve --queue jobs.jsonl`` reads one job per line::

    {"name": "varity-nightly", "approach": "varity", "budget": 2000,
     "seed": 1, "shards": 8}
    {"approach": "loops", "budget": 500, "seed": 2, "shards": 4}

and supervises each in turn with the same worker pool, so N workers
stay saturated for as long as the queue has work (shards within a
campaign fan out concurrently; campaigns run in file order, which keeps
every job's merged store attributable to one contiguous burst of the
event log).  Each job gets its own subdirectory of the fleet dir —
``001-varity-nightly/``, ``002-loops/`` — holding its shard
checkpoints, worker logs, ``fleet_events.jsonl`` and ``merged.jsonl``.

Blank lines and ``#`` comment lines are allowed, so a queue file can be
maintained by hand.  A malformed job line fails fast *before* any
campaign runs: half-draining a queue and then discovering a typo in job
7 wastes machines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.fleet.supervisor import (
    CampaignSpec,
    FleetConfig,
    FleetResult,
    FleetSupervisor,
)
from repro.fleet.targets import WorkerTarget

__all__ = ["load_jobs", "job_dirname", "drain_queue"]


def load_jobs(path: str | os.PathLike) -> list[tuple[CampaignSpec, int]]:
    """Parse a queue file into ``(spec, shard_count)`` jobs, validated.

    Raises :class:`ValueError` naming the offending line on the first
    malformed job — the whole file is vetted before anything runs.
    """
    jobs: list[tuple[CampaignSpec, int]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}:{lineno}: not valid JSON: {e}") from e
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: job must be a JSON object")
        try:
            spec = CampaignSpec.from_json(record)
        except (TypeError, ValueError) as e:
            raise ValueError(f"{path}:{lineno}: {e}") from e
        shards = record.get("shards", 1)
        if not isinstance(shards, int) or shards < 1:
            raise ValueError(
                f"{path}:{lineno}: 'shards' must be a positive integer, "
                f"got {shards!r}"
            )
        jobs.append((spec, shards))
    if not jobs:
        raise ValueError(f"{path}: queue file contains no jobs")
    return jobs


def job_dirname(position: int, spec: CampaignSpec) -> str:
    """``001-name`` (or ``001-approach`` when the job is unnamed)."""
    label = spec.name or spec.approach
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in label)
    return f"{position:03d}-{safe}"


async def drain_queue(
    path: str | os.PathLike,
    workdir: str | Path,
    config: FleetConfig | None = None,
    target: WorkerTarget | None = None,
    chain_triage: bool = False,
    corpus_path: str | Path | None = None,
) -> list[FleetResult]:
    """Supervise every job in the queue file; returns results in order.

    A partial verdict on one job does not stop the queue — later jobs
    still run, and the caller inspects each result's ``status`` (the
    CLI exits non-zero if *any* job settled partial).  ``corpus_path``
    names one longitudinal corpus shared by every job: campaigns ingest
    in queue order, so the second job's diff already knows the first
    job's findings.
    """
    workdir = Path(workdir)
    results: list[FleetResult] = []
    for position, (spec, shards) in enumerate(load_jobs(path), start=1):
        supervisor = FleetSupervisor(
            spec,
            shards,
            workdir / job_dirname(position, spec),
            config=config,
            target=target,
            chain_triage=chain_triage,
            corpus_path=corpus_path,
        )
        results.append(await supervisor.run())
    return results
