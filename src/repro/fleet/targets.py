"""Where fleet workers run: the :class:`WorkerTarget` abstraction.

The supervisor schedules *shards*, not processes — all it needs from a
worker's home is "launch this ``llm4fp`` invocation and give me a handle
I can await, poll and kill".  :class:`LocalProcessTarget` satisfies that
with asyncio subprocesses on the supervisor's own machine; an ssh or
container target implements the same two-method surface (launch a remote
command, proxy wait/kill) and slots in without touching the scheduler —
the heartbeat already works remotely because it reads the shard's
*checkpoint file*, the one artefact a worker must produce wherever it
runs (a shared filesystem or a sync job brings it home).
"""

from __future__ import annotations

import asyncio
import os
import sys
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Sequence

__all__ = ["WorkerHandle", "WorkerTarget", "LocalProcessTarget", "worker_python"]


def worker_python() -> str:
    """The interpreter worker processes run under (the supervisor's own)."""
    return sys.executable


class WorkerHandle(ABC):
    """One launched worker: awaitable exit, killable from the outside."""

    @abstractmethod
    async def wait(self) -> int:
        """Block until the worker exits; returns its exit code."""

    @abstractmethod
    def kill(self) -> None:
        """Hard-kill the worker (SIGKILL); idempotent after exit."""

    @property
    @abstractmethod
    def pid(self) -> int | None:
        """An identifier for logs (a local PID, a remote job id, ...)."""


class WorkerTarget(ABC):
    """A place that can run ``llm4fp`` worker invocations."""

    @abstractmethod
    async def launch(
        self, argv: Sequence[str], log_path: Path | None = None
    ) -> WorkerHandle:
        """Start ``argv`` on the target; stream its output to ``log_path``.

        ``argv`` is a complete command line (interpreter included).  The
        per-attempt ``log_path`` captures the worker's stdout+stderr for
        post-mortems; ``None`` discards output.
        """


class _LocalHandle(WorkerHandle):
    def __init__(self, process: asyncio.subprocess.Process, log_file) -> None:
        self._process = process
        self._log_file = log_file

    async def wait(self) -> int:
        code = await self._process.wait()
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        return code

    def kill(self) -> None:
        try:
            self._process.kill()
        except ProcessLookupError:
            pass  # already exited

    @property
    def pid(self) -> int | None:
        return self._process.pid


class LocalProcessTarget(WorkerTarget):
    """Workers as subprocesses of the supervisor, one per shard slot.

    The default (and the test substrate): `llm4fp serve` on an N-core
    machine with ``--backend process`` workers saturates the machine the
    same way N hand-launched terminals would, minus the hands.
    """

    async def launch(
        self, argv: Sequence[str], log_path: Path | None = None
    ) -> WorkerHandle:
        if log_path is not None:
            log_path.parent.mkdir(parents=True, exist_ok=True)
            log_file = log_path.open("ab")
            stdout = stderr = log_file
        else:
            log_file = None
            stdout = stderr = asyncio.subprocess.DEVNULL
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=stdout,
            stderr=stderr,
            stdin=asyncio.subprocess.DEVNULL,
            env=os.environ.copy(),
        )
        return _LocalHandle(process, log_file)
