"""The fleet's structured event log: ``fleet_events.jsonl``.

Every scheduling decision the supervisor makes — spawning a worker,
observing checkpoint growth, declaring a death or a stall, reassigning a
shard, merging, settling for a partial verdict — is appended here as one
JSON line the moment it happens, so a campaign that ran unattended
overnight is post-mortem-able from the file alone.

Timestamps are **monotonic seconds since the fleet started** (never
wall-clock): they order events correctly across clock adjustments, and
two events' difference is always a real duration.  The log is
append-only JSONL with one fsync'd line per event, the same durability
discipline as the campaign checkpoint store.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable

__all__ = ["EVENT_KINDS", "FleetEventLog", "read_events"]

#: Every event kind the supervisor emits, in rough lifecycle order.
EVENT_KINDS = (
    "fleet-start",   # campaign spec + shard/worker counts
    "spawn",         # a worker process launched for (shard, attempt)
    "progress",      # checkpoint tail grew: rows completed so far
    "chaos-kill",    # the fault-injection hook fired (testing aid)
    "death",         # a worker exited with its shard incomplete
    "stall",         # no row growth for stall_timeout; worker killed
    "reassign",      # a fresh worker will resume the shard's checkpoint
    "shard-done",    # a shard's checkpoint covers every owned index
    "shard-failed",  # retries exhausted; shard abandoned incomplete
    "merge",         # shard checkpoints spliced into the merged store
    "triage",        # chained triage ran over the merged store
    "corpus",        # chained corpus ingest ran over the merged store
    "fleet-done",    # final verdict: ok or partial
)


class FleetEventLog:
    """Append-only JSONL event log with monotonic timestamps.

    ``clock`` is injectable (tests pin it) and defaults to
    :func:`time.monotonic`; the first emit anchors t=0, so timestamps
    read as seconds into the fleet run.
    """

    def __init__(
        self, path: str | os.PathLike, clock: Callable[[], float] | None = None
    ) -> None:
        self.path = Path(path)
        self._clock = clock if clock is not None else time.monotonic
        self._t0: float | None = None

    def emit(self, event: str, /, **fields) -> dict:
        """Durably append one event; returns the record written."""
        if event not in EVENT_KINDS:
            raise ValueError(
                f"unknown fleet event {event!r}; expected one of {EVENT_KINDS}"
            )
        now = self._clock()
        if self._t0 is None:
            self._t0 = now
        record = {"t": round(now - self._t0, 3), "event": event, **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as f:
            f.write(json.dumps(record, separators=(",", ":")) + "\n")
            f.flush()
            os.fsync(f.fileno())
        return record


def read_events(path: str | os.PathLike) -> list[dict]:
    """All complete events in a ``fleet_events.jsonl``, in emit order.

    A partial final line (the supervisor died mid-append) is dropped,
    mirroring the checkpoint store's crash-tail rule: everything before
    it is trusted.
    """
    events: list[dict] = []
    data = Path(path).read_bytes()
    for raw in data.splitlines(keepends=True):
        if not raw.endswith(b"\n"):
            break
        try:
            events.append(json.loads(raw.decode("utf-8")))
        except (json.JSONDecodeError, UnicodeDecodeError):
            break
    return events
