"""The asyncio campaign supervisor behind ``llm4fp serve``.

One fleet = one campaign split into ``shard_count`` shards, driven to
completion by at most ``workers`` concurrent worker processes.  Each
shard's worker is an ordinary ``llm4fp run --shard i/n --resume`` —
exactly the command an operator would type — so everything the engine
already guarantees (fsync'd append-only checkpoints, crash-tail
truncation, generate-stage replay) is inherited rather than reinvented.
The supervisor adds the scheduling the human used to do:

* **heartbeat** — a worker is healthy iff its checkpoint's tail grows.
  The supervisor polls each running shard's file at a byte offset
  (:func:`repro.difftest.store.tail_outcomes`), so progress reads are
  incremental and work wherever the file lands (local disk, NFS from an
  ssh target).  Liveness is judged from the *artefact*, not the process:
  a worker that is alive but wedged is as dead as a killed one.
* **reassignment** — a shard whose worker died or stalled is relaunched
  with the same ``--resume`` checkpoint after an exponential backoff;
  the new worker replays the completed prefix and recomputes only what
  is missing.  Retries are bounded: after ``max_retries`` respawns the
  shard is abandoned and the fleet settles for an honest **partial**
  verdict instead of hanging.
* **merge** — when every shard completes, the shard checkpoints are
  spliced byte-identically into one merged store
  (:func:`repro.difftest.store.merge_shard_stores`).  The contract under
  test in ``tests/fleet/``: SIGKILL any worker mid-campaign and the
  merged store still matches an unkilled single-process run byte for
  byte.

Island campaigns (a feedback approach, or an explicit ``islands`` in the
spec) need no extra machinery here: each worker is an island that
exchanges merge-point records through the sibling checkpoints already
sitting in the fleet directory.  The one scheduling property they rely on
is that shards acquire worker slots in ascending index order (the
supervisor launches shard drivers in index order and holds a shard's
slot across its retries), because an island only ever waits on *lower*
islands — so a fleet with fewer workers than shards cannot deadlock on a
merge point, and a SIGKILLed island resumes, replays its generation
stream, and re-emits byte-identical records.

Every decision is recorded in ``fleet_events.jsonl``
(:mod:`repro.fleet.events`) with monotonic timestamps.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.difftest.store import merge_shard_stores, tail_outcomes
from repro.fleet.events import FleetEventLog
from repro.fleet.targets import LocalProcessTarget, WorkerTarget, worker_python

__all__ = [
    "CampaignSpec",
    "FleetConfig",
    "FleetResult",
    "FleetSupervisor",
    "ShardState",
    "run_fleet",
]

#: Poll interval while the chaos-kill hook is armed: tight enough to
#: catch a shard between two row appends (a program takes tens of ms).
_CHAOS_POLL = 0.02


@dataclass(frozen=True)
class CampaignSpec:
    """What to run: one campaign, as its workers will see it.

    Fields left at ``None`` are omitted from worker command lines, so
    workers fall back to the CLI's own defaults / ``REPRO_*`` knobs —
    the spec only pins what the operator pinned.
    """

    approach: str = "loops"
    budget: int = 100
    seed: int = 20250916
    backend: str | None = None
    jobs: str | None = None
    exec_mode: str | None = None
    compile_cache: bool = True
    #: island-model generation: islands per campaign (None = worker
    #: default — 0, or auto-islands for a sharded feedback approach)
    islands: int | None = None
    #: island merge-point cadence (None = worker default)
    merge_every: int | None = None
    #: label used for the campaign's directory in queue mode
    name: str = ""

    @classmethod
    def from_json(cls, record: dict) -> "CampaignSpec":
        """One queue-file job line -> a spec (unknown keys rejected)."""
        known = set(cls.__dataclass_fields__)
        extra = set(record) - known - {"shards"}
        if extra:
            raise ValueError(f"unknown job field(s): {sorted(extra)}")
        return cls(**{k: v for k, v in record.items() if k in known})

    def worker_argv(
        self, shard_index: int, shard_count: int, checkpoint: Path
    ) -> list[str]:
        """The exact ``llm4fp run`` invocation for one shard worker."""
        argv = [
            worker_python(),
            "-m",
            "repro.cli",
            "run",
            "--approach",
            self.approach,
            "--budget",
            str(self.budget),
            "--seed",
            str(self.seed),
            "--shard",
            f"{shard_index}/{shard_count}",
            "--resume",
            str(checkpoint),
            "--progress-json",
        ]
        if self.backend is not None:
            argv += ["--backend", self.backend]
        if self.jobs is not None:
            argv += ["--jobs", str(self.jobs)]
        if self.exec_mode is not None:
            argv += ["--exec-mode", self.exec_mode]
        if self.islands is not None:
            argv += ["--islands", str(self.islands)]
        if self.merge_every is not None:
            argv += ["--merge-every", str(self.merge_every)]
        if not self.compile_cache:
            argv += ["--no-cache"]
        return argv

    def owned(self, shard_index: int, shard_count: int) -> int:
        """How many budget indices shard ``i/n`` tests."""
        return len(range(shard_index, self.budget, shard_count))


@dataclass(frozen=True)
class FleetConfig:
    """Supervisor scheduling knobs (defaults mirror ``REPRO_FLEET_*``)."""

    workers: int = 2
    #: seconds between checkpoint-tail heartbeat polls
    heartbeat: float = 2.0
    #: seconds of zero row growth before a live worker is declared
    #: stalled, killed, and its shard reassigned
    stall_timeout: float = 300.0
    #: respawns granted to a shard after its first death/stall; the
    #: attempt budget per shard is ``max_retries + 1``
    max_retries: int = 2
    #: base of the exponential backoff between a death and the respawn
    #: (attempt k waits ``backoff * 2**(k-1)`` seconds)
    backoff: float = 0.5
    #: fault-injection hook: SIGKILL the first worker whose shard
    #: checkpoint reaches this many rows (None = off).  Exists so tests,
    #: CI and sceptical operators can watch a kill get repaired.
    chaos_kill_after: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")


@dataclass
class ShardState:
    """The supervisor's live view of one shard."""

    index: int
    checkpoint: Path
    owned: int
    rows: int = 0
    offset: int = 0  # byte offset of the next checkpoint tail read
    attempts: int = 0
    deaths: int = 0
    status: str = "pending"  # pending -> running -> done | failed

    @property
    def complete(self) -> bool:
        return self.rows >= self.owned


@dataclass
class FleetResult:
    """What a fleet run produced (also summarized in ``fleet-done``)."""

    spec: CampaignSpec
    shards: list[ShardState]
    events_path: Path
    merged_path: Path | None = None
    triage_path: Path | None = None
    corpus_report_path: Path | None = None
    status: str = "partial"  # "ok" | "partial"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def deaths(self) -> int:
        return sum(s.deaths for s in self.shards)


class FleetSupervisor:
    """Drives one campaign's shards to a merged store (or partial verdict).

    Construct with a spec, a shard count and a working directory; the
    directory accumulates one ``shardI_of_N.jsonl`` checkpoint per
    shard, per-attempt worker logs under ``logs/``, the event log, and
    (on success) ``merged.jsonl``.  ``target`` defaults to local
    subprocesses; tests substitute misbehaving targets to exercise the
    recovery paths.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        shard_count: int,
        workdir: str | Path,
        config: FleetConfig | None = None,
        target: WorkerTarget | None = None,
        chain_triage: bool = False,
        corpus_path: str | Path | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.spec = spec
        self.shard_count = shard_count
        self.workdir = Path(workdir)
        self.config = config or FleetConfig()
        self.target = target or LocalProcessTarget()
        self.chain_triage = chain_triage
        self.corpus_path = Path(corpus_path) if corpus_path else None
        self._clock = clock if clock is not None else time.monotonic
        self.events = FleetEventLog(
            self.workdir / "fleet_events.jsonl", clock=self._clock
        )
        self._chaos_fired = False

    # -- public entry ------------------------------------------------------------

    async def run(self) -> FleetResult:
        """Supervise the whole campaign; returns when settled either way."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        shards = [
            ShardState(
                index=i,
                checkpoint=self.workdir / f"shard{i}_of_{self.shard_count}.jsonl",
                owned=self.spec.owned(i, self.shard_count),
            )
            for i in range(self.shard_count)
        ]
        result = FleetResult(
            spec=self.spec, shards=shards, events_path=self.events.path
        )
        self.events.emit(
            "fleet-start",
            approach=self.spec.approach,
            budget=self.spec.budget,
            seed=self.spec.seed,
            shards=self.shard_count,
            workers=self.config.workers,
        )
        semaphore = asyncio.Semaphore(self.config.workers)
        await asyncio.gather(
            *(self._drive_shard(state, semaphore) for state in shards)
        )
        failed = [s.index for s in shards if s.status != "done"]
        if not failed:
            result.merged_path = self.workdir / "merged.jsonl"
            merge_shard_stores(
                [s.checkpoint for s in shards], result.merged_path
            )
            self.events.emit(
                "merge",
                path=str(result.merged_path),
                shards=self.shard_count,
                rows=self.spec.budget,
            )
            result.status = "ok"
            if self.chain_triage:
                result.triage_path = await self._run_triage(result.merged_path)
            if self.corpus_path is not None:
                result.corpus_report_path = await self._run_corpus(
                    result.merged_path
                )
        self.events.emit(
            "fleet-done",
            status=result.status,
            failed_shards=failed,
            deaths=result.deaths,
        )
        return result

    # -- per-shard driver --------------------------------------------------------

    async def _drive_shard(
        self, state: ShardState, semaphore: asyncio.Semaphore
    ) -> None:
        async with semaphore:
            state.status = "running"
            while True:
                state.attempts += 1
                argv = self.spec.worker_argv(
                    state.index, self.shard_count, state.checkpoint
                )
                log_path = (
                    self.workdir
                    / "logs"
                    / f"shard{state.index}.attempt{state.attempts}.log"
                )
                handle = await self.target.launch(argv, log_path)
                self.events.emit(
                    "spawn",
                    shard=state.index,
                    attempt=state.attempts,
                    pid=handle.pid,
                    log=str(log_path),
                )
                reason, code = await self._monitor(state, handle)
                self._poll(state)  # the exit itself may have added rows
                if state.complete:
                    state.status = "done"
                    self.events.emit(
                        "shard-done",
                        shard=state.index,
                        rows=state.rows,
                        attempts=state.attempts,
                    )
                    return
                state.deaths += 1
                self.events.emit(
                    "stall" if reason == "stalled" else "death",
                    shard=state.index,
                    attempt=state.attempts,
                    rows=state.rows,
                    owned=state.owned,
                    exit_code=code,
                )
                if state.attempts > self.config.max_retries:
                    state.status = "failed"
                    self.events.emit(
                        "shard-failed",
                        shard=state.index,
                        rows=state.rows,
                        owned=state.owned,
                        attempts=state.attempts,
                    )
                    return
                delay = self.config.backoff * (2 ** (state.attempts - 1))
                if delay:
                    await asyncio.sleep(delay)
                self.events.emit(
                    "reassign",
                    shard=state.index,
                    attempt=state.attempts + 1,
                    backoff_seconds=round(delay, 3),
                    resuming_rows=state.rows,
                )

    async def _monitor(self, state: ShardState, handle) -> tuple[str, int | None]:
        """Watch one worker until it exits or stalls; returns (reason, code)."""
        waiter = asyncio.ensure_future(handle.wait())
        last_growth = self._clock()
        chaos_armed = (
            self.config.chaos_kill_after is not None and not self._chaos_fired
        )
        timeout = min(self.config.heartbeat, _CHAOS_POLL) if chaos_armed else (
            self.config.heartbeat
        )
        try:
            while True:
                done, _ = await asyncio.wait({waiter}, timeout=timeout)
                if self._poll(state):
                    last_growth = self._clock()
                if (
                    chaos_armed
                    and not self._chaos_fired
                    and state.rows >= self.config.chaos_kill_after
                ):
                    self._chaos_fired = True
                    self.events.emit(
                        "chaos-kill", shard=state.index, rows=state.rows
                    )
                    handle.kill()
                if waiter in done:
                    return "exit", waiter.result()
                if self._clock() - last_growth >= self.config.stall_timeout:
                    handle.kill()
                    await waiter
                    return "stalled", None
        finally:
            if not waiter.done():
                handle.kill()
                await waiter

    def _poll(self, state: ShardState) -> bool:
        """One incremental checkpoint tail read; emits progress on growth."""
        indices, offset = tail_outcomes(state.checkpoint, state.offset)
        state.offset = offset
        if not indices:
            return False
        state.rows += len(indices)
        self.events.emit(
            "progress",
            shard=state.index,
            rows=state.rows,
            owned=state.owned,
            attempt=state.attempts,
        )
        return True

    # -- post-merge chaining -----------------------------------------------------

    async def _run_triage(self, merged_path: Path) -> Path | None:
        """Chain ``llm4fp triage`` over the merged store (best-effort)."""
        report_path = self.workdir / "triage_report.txt"
        argv = [
            worker_python(),
            "-m",
            "repro.cli",
            "triage",
            str(merged_path),
            "--out",
            str(report_path),
        ]
        handle = await self.target.launch(
            argv, self.workdir / "logs" / "triage.log"
        )
        code = await handle.wait()
        self.events.emit(
            "triage",
            exit_code=code,
            report=str(report_path) if code == 0 else None,
        )
        return report_path if code == 0 else None

    async def _run_corpus(self, merged_path: Path) -> Path | None:
        """Chain ``llm4fp corpus ingest`` over the merged store.

        Folds the campaign's triggers into the longitudinal corpus and
        leaves the never-seen signatures in ``corpus_new.txt`` — the
        fleet's "what did tonight actually find" artifact.  Best-effort
        like triage: a failure is recorded, never fatal to the verdict.
        """
        report_path = self.workdir / "corpus_new.txt"
        argv = [
            worker_python(),
            "-m",
            "repro.cli",
            "corpus",
            "ingest",
            str(self.corpus_path),
            str(merged_path),
            "--label",
            self.spec.name or self.spec.approach,
            "--out",
            str(report_path),
        ]
        handle = await self.target.launch(
            argv, self.workdir / "logs" / "corpus.log"
        )
        code = await handle.wait()
        self.events.emit(
            "corpus",
            exit_code=code,
            corpus=str(self.corpus_path),
            report=str(report_path) if code == 0 else None,
        )
        return report_path if code == 0 else None


def run_fleet(
    spec: CampaignSpec,
    shard_count: int,
    workdir: str | Path,
    config: FleetConfig | None = None,
    target: WorkerTarget | None = None,
    chain_triage: bool = False,
    corpus_path: str | Path | None = None,
) -> FleetResult:
    """Synchronous front door: supervise one campaign to its verdict.

    >>> spec = CampaignSpec(approach="loops", budget=4, seed=1)
    >>> spec.owned(0, 2), spec.owned(1, 2)
    (2, 2)
    """
    supervisor = FleetSupervisor(
        spec,
        shard_count,
        workdir,
        config=config,
        target=target,
        chain_triage=chain_triage,
        corpus_path=corpus_path,
    )
    return asyncio.run(supervisor.run())


def format_fleet_summary(result: FleetResult) -> str:
    """The human-facing settlement report ``llm4fp serve`` prints."""
    lines = [
        f"fleet:       {result.spec.approach} budget={result.spec.budget} "
        f"seed={result.spec.seed}",
        f"shards:      {len(result.shards)}",
        f"deaths:      {result.deaths}",
        f"status:      {result.status}",
    ]
    for s in result.shards:
        lines.append(
            f"  shard {s.index}: {s.status:<6} rows {s.rows}/{s.owned} "
            f"attempts {s.attempts}"
        )
    if result.merged_path is not None:
        lines.append(f"merged:      {result.merged_path}")
    if result.triage_path is not None:
        lines.append(f"triage:      {result.triage_path}")
    if result.corpus_report_path is not None:
        lines.append(f"corpus new:  {result.corpus_report_path}")
    lines.append(f"events:      {result.events_path}")
    return "\n".join(lines)
