"""Worker-safe execution entry point for the campaign engine.

The staged engine (:mod:`repro.difftest.engine`) fans the per-program
(compiler, level) matrix out to a :mod:`concurrent.futures` pool.  Pool
workers must not share mutable state, so this module exposes a single pure
function: it builds a fresh :class:`~repro.execution.interp.Interpreter`
per call and touches nothing global.  Given equal arguments it returns a
bit-identical :class:`~repro.execution.result.ExecutionResult` — the
property the engine's run-sharing and determinism guarantees rest on
(every FP operation routes through the deterministic
:class:`~repro.fp.env.FPEnvironment`, and libm perturbations are keyed
hashes, not RNG draws).
"""

from __future__ import annotations

from repro.execution.interp import Interpreter
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.execution.result import ExecutionResult
from repro.fp.env import FPEnvironment
from repro.ir import nodes as ir

__all__ = ["KernelTask", "run_kernel", "run_kernel_task"]

#: A fully picklable execution unit: (kernel IR, FP environment, inputs,
#: step limit).  This is the wire format of the process backend — every
#: component is a plain dataclass/tuple, so the spec crosses a
#: :class:`~concurrent.futures.ProcessPoolExecutor` boundary intact and
#: pickle round-trips floats bit-exactly.
KernelTask = tuple


def run_kernel(
    kernel: ir.Kernel,
    env: FPEnvironment,
    inputs: tuple,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ExecutionResult:
    """Execute ``kernel`` under ``env`` on one input vector.

    Safe to call concurrently from any thread or process: every invocation
    uses a private interpreter and the result depends only on the
    arguments.
    """
    return Interpreter(kernel, env, max_steps).run(inputs)


def run_kernel_task(task: KernelTask) -> ExecutionResult:
    """Unpack one :data:`KernelTask` and run it (pool ``map`` entry point).

    One fresh interpreter per call.  When several input sets hit the same
    kernel, prefer the batched form (:mod:`repro.execution.batch`): a
    :class:`~repro.execution.batch.KernelRunner` hoists the per-kernel
    setup so repeated inputs stop paying it, in every exec mode.
    """
    kernel, env, inputs, max_steps = task
    return run_kernel(kernel, env, inputs, max_steps)
