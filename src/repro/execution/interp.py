"""The IR interpreter.

Every floating-point operation routes through the binary's
:class:`~repro.fp.env.FPEnvironment`, so the interpreter is exact with
respect to the modeled machine: two binaries produce bit-identical output
iff their optimized IR and environments are observationally equal.

Undefined behaviour is *trapped*, not approximated: out-of-bounds element
access, reads of uninitialized array elements, integer division by zero,
signed integer overflow, and invalid float->int casts raise
:class:`~repro.errors.TrapError`, and the harness discards the program —
mirroring the paper's §4 plan of UB-sanitizer filtering.
"""

from __future__ import annotations

import math


from repro.errors import StepLimitExceeded, TrapError
from repro.execution.limits import DEFAULT_MAX_STEPS, INT_MAX, INT_MIN
from repro.execution.result import ExecStatus, ExecutionResult
from repro.fp.env import FPEnvironment
from repro.ir import nodes as ir

__all__ = ["Interpreter"]


class _Return(Exception):
    """Non-local exit used for SReturn."""


class Interpreter:
    def __init__(
        self,
        kernel: ir.Kernel,
        env: FPEnvironment,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> None:
        self.kernel = kernel
        self.env = env
        self.max_steps = max_steps
        self._steps = 0
        self._scalars: dict[str, float | int] = {}
        self._arrays: dict[str, list[float | None]] = {}
        self._printed: list[float] = []
        self._stdout: list[str] = []

    # -- public API ---------------------------------------------------------

    def reset(self) -> None:
        """Clear per-run state so one instance can serve many input sets."""
        self._steps = 0
        self._scalars = {}
        self._arrays = {}
        self._printed = []
        self._stdout = []

    def run(self, inputs: tuple) -> ExecutionResult:
        """Execute the kernel on one input vector.

        ``inputs`` has one entry per kernel parameter: a number for scalar
        parameters or a sequence of numbers for pointer parameters.
        """
        try:
            self._bind(inputs)
            try:
                self._exec_block(self.kernel.body)
            except _Return:
                pass
        except TrapError as e:
            return ExecutionResult(ExecStatus.TRAP, error=str(e), steps=self._steps)
        except StepLimitExceeded as e:
            return ExecutionResult(
                ExecStatus.STEP_LIMIT, error=str(e), steps=self._steps
            )
        return ExecutionResult(
            ExecStatus.OK,
            printed=tuple(self._printed),
            stdout="".join(self._stdout),
            steps=self._steps,
        )

    # -- setup ------------------------------------------------------------------

    def _bind(self, inputs: tuple) -> None:
        if len(inputs) != len(self.kernel.params):
            raise TrapError(
                f"kernel takes {len(self.kernel.params)} inputs, got {len(inputs)}"
            )
        for param, value in zip(self.kernel.params, inputs):
            if param.is_pointer:
                try:
                    elems = [float(v) for v in value]
                except TypeError:
                    raise TrapError(
                        f"parameter {param.name!r} needs a sequence input"
                    ) from None
                ty = param.scalar_ty
                self._arrays[param.name] = [self.env.canon(v, ty) for v in elems]
            elif param.ty == "int":
                self._scalars[param.name] = self._check_int(int(value))
            else:
                self._scalars[param.name] = self.env.canon(float(value), param.ty)

    # -- bookkeeping ----------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(f"exceeded {self.max_steps} interpretation steps")

    @staticmethod
    def _check_int(v: int) -> int:
        if not INT_MIN <= v <= INT_MAX:
            raise TrapError(f"signed integer overflow: {v}")
        return v

    # -- statements --------------------------------------------------------------------

    def _exec_block(self, stmts: tuple[ir.Stmt, ...]) -> None:
        for s in stmts:
            self._exec_stmt(s)

    def _exec_stmt(self, s: ir.Stmt) -> None:
        self._tick()
        if isinstance(s, ir.SAssign):
            self._scalars[s.name] = self._eval(s.value)
        elif isinstance(s, ir.SDeclArray):
            if s.init is not None:
                values: list[float | None] = [self._as_float(self._eval(e)) for e in s.init]
                values.extend(0.0 for _ in range(s.size - len(values)))
            else:
                values = [None] * s.size
            self._arrays[s.name] = values
        elif isinstance(s, ir.SStoreElem):
            arr = self._array(s.name)
            idx = self._index(arr, s.index, s.name)
            arr[idx] = self._as_float(self._eval(s.value))
        elif isinstance(s, ir.SVecStore):
            arr = self._array(s.name)
            idx = self._vec_index(arr, s.index, s.lanes, s.name)
            lanes = self._eval(s.value)
            for j in range(s.lanes):
                arr[idx + j] = self._as_float(lanes[j])
        elif isinstance(s, ir.SMaskedStore):
            self._masked_store(s)
        elif isinstance(s, ir.SIf):
            if self._truthy(self._eval(s.cond)):
                self._exec_block(s.then)
            else:
                self._exec_block(s.other)
        elif isinstance(s, ir.SFor):
            self._exec_block(s.init)
            while s.cond is None or self._truthy(self._eval(s.cond)):
                self._tick()
                self._exec_block(s.body)
                self._exec_block(s.step)
        elif isinstance(s, ir.SWhile):
            while self._truthy(self._eval(s.cond)):
                self._tick()
                self._exec_block(s.body)
        elif isinstance(s, ir.SPrint):
            self._print(s)
        elif isinstance(s, ir.SReturn):
            raise _Return()
        else:  # pragma: no cover - exhaustive
            raise TrapError(f"cannot execute {type(s).__name__}")

    def _masked_store(self, s: ir.SMaskedStore) -> None:
        """Predicated store, at scalar (lanes=1) or vector width.

        The scalar form short-circuits exactly like the guarded store it
        replaced: the mask evaluates first, and a false predicate skips
        index, value *and* the write.  The vector form evaluates mask and
        value vectors in full (speculated lanes execute), then writes —
        and bounds-checks — only the active lanes.
        """
        if s.lanes == 1:
            if not self._truthy(self._eval(s.mask)):
                return
            arr = self._array(s.name)
            idx = self._index(arr, s.index, s.name)
            arr[idx] = self._as_float(self._eval(s.value))
            return
        mask = self._eval(s.mask)
        values = self._eval(s.value)
        arr = self._array(s.name)
        idx = self._eval(s.index)
        for j in range(s.lanes):
            if not mask[j]:
                continue
            pos = idx + j
            if not 0 <= pos < len(arr):
                raise TrapError(
                    f"index {pos} out of bounds for {s.name}[{len(arr)}]"
                )
            arr[pos] = self._as_float(values[j])

    def _print(self, s: ir.SPrint) -> None:
        args = [self._eval(v) for v in s.values]
        text = _c_printf(s.fmt, args)
        self._stdout.append(text)
        for v in args:
            if isinstance(v, float):
                self._printed.append(v)

    # -- expression evaluation ------------------------------------------------------------

    def _eval(self, e: ir.Expr):
        self._tick()
        env = self.env
        if isinstance(e, ir.FConst):
            return e.value
        if isinstance(e, ir.IConst):
            return e.value
        if isinstance(e, ir.Load):
            try:
                return self._scalars[e.name]
            except KeyError:
                raise TrapError(f"read of unset variable {e.name!r}") from None
        if isinstance(e, ir.LoadElem):
            arr = self._array(e.name)
            return self._read_elem(arr, self._eval(e.index), e.name)
        if isinstance(e, ir.FBin):
            a = self._eval(e.left)
            b = self._eval(e.right)
            if e.op == "+":
                return env.add(a, b, e.ty)
            if e.op == "-":
                return env.sub(a, b, e.ty)
            if e.op == "*":
                return env.mul(a, b, e.ty)
            return env.div(a, b, e.ty)
        if isinstance(e, ir.Fma):
            return env.fma(self._eval(e.a), self._eval(e.b), self._eval(e.c), e.ty)
        if isinstance(e, ir.FNeg):
            return env.neg(self._eval(e.operand), e.ty)
        if isinstance(e, ir.FCall):
            args = tuple(self._eval(a) for a in e.args)
            return env.call(e.name, args, e.ty)
        if isinstance(e, ir.IBin):
            return self._ibin(e)
        if isinstance(e, ir.INeg):
            return self._check_int(-self._eval(e.operand))
        if isinstance(e, ir.Compare):
            return self._compare(e)
        if isinstance(e, ir.Logic):
            lv = self._truthy(self._eval(e.left))
            if e.op == "&&":
                return int(lv and self._truthy(self._eval(e.right)))
            return int(lv or self._truthy(self._eval(e.right)))
        if isinstance(e, ir.Not):
            return int(not self._truthy(self._eval(e.operand)))
        if isinstance(e, ir.Select):
            if self._truthy(self._eval(e.cond)):
                return self._eval(e.then)
            return self._eval(e.other)
        if isinstance(e, ir.SiToFp):
            return self.env.canon(float(self._eval(e.operand)), e.ty)
        if isinstance(e, ir.FpToSi):
            v = self._eval(e.operand)
            if math.isnan(v) or math.isinf(v) or not INT_MIN <= v <= INT_MAX:
                raise TrapError(f"invalid float->int conversion of {v!r}")
            return math.trunc(v)
        if isinstance(e, ir.FpExt):
            return self._eval(e.operand)  # float values are exact doubles
        if isinstance(e, ir.FpTrunc):
            v = self._eval(e.operand)
            if math.isnan(v) or math.isinf(v):
                return v
            return self.env.canon(v, "float")
        if isinstance(e, ir.ANY_VECTOR_NODES):
            return self._eval_vector(e)
        raise TrapError(f"cannot evaluate {type(e).__name__}")  # pragma: no cover

    def _eval_vector(self, e: ir.Expr):
        """Vector nodes evaluate to tuples of lanes; every lane routes
        through the environment exactly like the scalar op it widens, so
        vector execution is deterministic lane math."""
        env = self.env
        if isinstance(e, ir.VecConst):
            return e.values
        if isinstance(e, ir.VecSplat):
            return (self._eval(e.operand),) * e.lanes
        if isinstance(e, ir.VecIota):
            base = self._eval(e.base)
            return tuple(self._check_int(base + j) for j in range(e.lanes))
        if isinstance(e, ir.VecLoad):
            arr = self._array(e.name)
            idx = self._vec_index(arr, e.index, e.lanes, e.name)
            return tuple(
                self._read_elem(arr, idx + j, e.name) for j in range(e.lanes)
            )
        if isinstance(e, ir.VecSiToFp):
            return tuple(env.canon(float(v), e.ty) for v in self._eval(e.operand))
        if isinstance(e, ir.VecBin):
            left = self._eval(e.left)
            right = self._eval(e.right)
            op = {"+": env.add, "-": env.sub, "*": env.mul, "/": env.div}[e.op]
            return tuple(op(a, b, e.ty) for a, b in zip(left, right))
        if isinstance(e, ir.VecNeg):
            return tuple(env.neg(v, e.ty) for v in self._eval(e.operand))
        if isinstance(e, ir.VecFma):
            a, b, c = self._eval(e.a), self._eval(e.b), self._eval(e.c)
            return tuple(
                env.fma(x, y, z, e.ty) for x, y, z in zip(a, b, c)
            )
        if isinstance(e, ir.VecCall):
            # Lane calls resolve through the environment's *vector* math
            # library when one is bound (the vec-libm tier); without one
            # this is exactly the scalar libm per lane.
            args = [self._eval(a) for a in e.args]
            return tuple(
                env.veccall(e.name, tuple(arg[j] for arg in args), e.ty)
                for j in range(e.lanes)
            )
        if isinstance(e, ir.VecFpExt):
            return self._eval(e.operand)  # float lanes are exact doubles
        if isinstance(e, ir.VecFpTrunc):
            return tuple(
                v if math.isnan(v) or math.isinf(v) else env.canon(v, "float")
                for v in self._eval(e.operand)
            )
        if isinstance(e, ir.VecCmp):
            left = self._eval(e.left)
            right = self._eval(e.right)
            return tuple(
                self._cmp_values(e.op, a, b, fp=True) for a, b in zip(left, right)
            )
        if isinstance(e, ir.VecSelect):
            # Both arms evaluate in full — the if-conversion observable:
            # every lane executes both sides, the mask only blends.
            mask = self._eval(e.mask)
            then = self._eval(e.then)
            other = self._eval(e.other)
            return tuple(
                t if m else o for m, t, o in zip(mask, then, other)
            )
        if isinstance(e, ir.VecMaskedLoad):
            mask = self._eval(e.mask)
            arr = self._array(e.name)
            idx = self._eval(e.index)
            lanes = []
            for j in range(e.lanes):
                active = not mask[j] if e.invert else bool(mask[j])
                if active:
                    lanes.append(self._read_elem(arr, idx + j, e.name))
                else:
                    lanes.append(0.0)  # zeroing masking: no memory touch
            return tuple(lanes)
        assert isinstance(e, ir.VecReduce)
        lanes = list(self._eval(e.operand))
        combine = env.add if e.op == "+" else env.mul
        if e.style == "ladder":
            acc = lanes[0]
            for v in lanes[1:]:
                acc = combine(acc, v, e.ty)
            return acc
        if e.style == "butterfly":
            n = len(lanes)
            while n > 1:
                m = (n + 1) // 2
                for j in range(n - m):
                    lanes[j] = combine(lanes[j], lanes[j + m], e.ty)
                n = m
            return lanes[0]
        # adjacent: pairwise neighbours per round, odd lane carries over
        while len(lanes) > 1:
            nxt = [
                combine(lanes[j], lanes[j + 1], e.ty)
                for j in range(0, len(lanes) - 1, 2)
            ]
            if len(lanes) % 2:
                nxt.append(lanes[-1])
            lanes = nxt
        return lanes[0]

    def _ibin(self, e: ir.IBin) -> int:
        a = self._eval(e.left)
        b = self._eval(e.right)
        if e.op == "+":
            return self._check_int(a + b)
        if e.op == "-":
            return self._check_int(a - b)
        if e.op == "*":
            return self._check_int(a * b)
        if b == 0:
            raise TrapError("integer division by zero")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        if e.op == "/":
            return self._check_int(q)
        return self._check_int(a - q * b)  # C remainder: sign of dividend

    def _compare(self, e: ir.Compare) -> int:
        return self._cmp_values(e.op, self._eval(e.left), self._eval(e.right), e.fp)

    @staticmethod
    def _cmp_values(op: str, a, b, fp: bool) -> int:
        if fp and (math.isnan(a) or math.isnan(b)):
            return int(op == "!=")  # NaN: only != is true
        table = {
            "==": a == b,
            "!=": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }
        return int(table[op])

    # -- helpers -------------------------------------------------------------------------

    @staticmethod
    def _as_float(v) -> float:
        return float(v)

    @staticmethod
    def _truthy(v) -> bool:
        if isinstance(v, float) and math.isnan(v):
            return True  # NaN is nonzero, hence true in C
        return v != 0

    def _array(self, name: str) -> list:
        try:
            return self._arrays[name]
        except KeyError:
            raise TrapError(f"no array named {name!r}") from None

    def _read_elem(self, arr: list, pos: int, name: str):
        """One bounds- and initialization-checked element read."""
        if not 0 <= pos < len(arr):
            raise TrapError(f"index {pos} out of bounds for {name}[{len(arr)}]")
        v = arr[pos]
        if v is None:
            raise TrapError(f"read of uninitialized element {name}[{pos}]")
        return v

    def _index(self, arr: list, index_expr: ir.Expr, name: str) -> int:
        idx = self._eval(index_expr)
        if not 0 <= idx < len(arr):
            raise TrapError(f"index {idx} out of bounds for {name}[{len(arr)}]")
        return idx

    def _vec_index(self, arr: list, index_expr: ir.Expr, lanes: int, name: str) -> int:
        idx = self._eval(index_expr)
        if not 0 <= idx <= len(arr) - lanes:
            raise TrapError(
                f"vector index {idx}..{idx + lanes - 1} out of bounds "
                f"for {name}[{len(arr)}]"
            )
        return idx


def _c_printf(fmt: str, args: list) -> str:
    """Tiny printf: %d, %i, %f, %e, %g with optional precision, plus escapes."""
    out: list[str] = []
    ai = 0
    i = 0
    while i < len(fmt):
        c = fmt[i]
        if c == "\\" and i + 1 < len(fmt):
            esc = fmt[i + 1]
            out.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(esc, esc))
            i += 2
            continue
        if c == "%" and i + 1 < len(fmt):
            j = i + 1
            while j < len(fmt) and (fmt[j].isdigit() or fmt[j] == "."):
                j += 1
            if j < len(fmt) and fmt[j] in "dieEfgG%":
                conv = fmt[j]
                spec = fmt[i + 1 : j]
                if conv == "%":
                    out.append("%")
                else:
                    if ai >= len(args):
                        raise TrapError("printf: more conversions than arguments")
                    v = args[ai]
                    ai += 1
                    if conv in "di":
                        out.append(str(int(v)))
                    else:
                        prec = spec[spec.index(".") + 1 :] if "." in spec else "6"
                        out.append(format(float(v), f".{prec}{conv}"))
                i = j + 1
                continue
        out.append(c)
        i += 1
    return "".join(out)
