"""Execution outcomes and the output signature used by differential testing."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.fp.bits import double_to_hex

#: All NaNs encode identically in signatures.  The paper's five-class
#: analysis has a single NaN category and no {NaN, NaN} inconsistency kind;
#: treating payload/sign-only NaN differences as inconsistencies would
#: introduce a category outside Figure 3's taxonomy.
_CANONICAL_NAN_HEX = "7ff8000000000000"


def _value_hex(v: float) -> str:
    if math.isnan(v):
        return _CANONICAL_NAN_HEX
    return double_to_hex(v)


class ExecStatus(enum.Enum):
    OK = "ok"
    TRAP = "trap"  # undefined behaviour detected (discard program)
    STEP_LIMIT = "step-limit"  # runaway loop (discard program)


@dataclass(frozen=True)
class ExecutionResult:
    """One binary's observable behaviour on one input vector."""

    status: ExecStatus
    printed: tuple[float, ...] = ()
    stdout: str = ""
    error: str | None = None
    steps: int = 0

    @property
    def ok(self) -> bool:
        return self.status is ExecStatus.OK

    @property
    def value(self) -> float | None:
        """The program's result: the last value printed (the paper's
        ``compute`` prints its final scalar)."""
        return self.printed[-1] if self.printed else None

    def signature(self) -> str | None:
        """Bitwise output encoding: 16 hex digits per printed double,
        ':'-joined (NaNs canonicalized).  Two runs are *consistent* iff
        signatures are equal — the paper's §2.4 comparison."""
        if not self.ok:
            return None
        return ":".join(_value_hex(v) for v in self.printed)
