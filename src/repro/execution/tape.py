"""Tape compiler: lower an IR kernel once, run many input sets fast.

The tree-walk :class:`~repro.execution.interp.Interpreter` pays per-step
AST dispatch (isinstance chains, dict lookups, numpy-boxed arithmetic)
for every input set.  A :class:`Tape` is compiled once per ``(kernel,
environment)`` and replays as a flat register machine: a linear list of
instructions over pre-resolved scalar-register and array slots, with all
floating-point operation *sites* pre-bound to the environment's
specialized implementations (:meth:`FPEnvironment.op_impl` and friends).

Bit-identical semantics are the contract, enforced by
``tests/execution/test_tape.py`` and the engine's ``check`` mode:

* every FP op routes through the same environment semantics;
* every trap (OOB, uninit read, div-by-zero, overflow, invalid casts,
  missing arrays/variables, printf arity) fires with the same message
  *and the same step count* as the interpreter;
* ``StepLimitExceeded`` fires at ``max_steps + 1`` exactly where the
  interpreter's per-node ``_tick`` would have crossed the limit.

Step accounting uses *tick fusion*: the interpreter ticks once per
statement/expression node, so a pure subtree of statically known shape
settles its whole cost in one bounded add at the end of the region.
Trap sites inside a fused region carry their static pending-tick offset
and settle exactly on the trap path (:func:`_trap_at`).  Short-circuit
nodes (``Logic``, ``Select``), loops, and anything below a dynamic child
are self-accounting barriers: they leave the step counter exact.  Side
effects inside a fused region cannot leak: a result's ``printed``/
``stdout`` are discarded on TRAP/STEP_LIMIT, so only the (exact) step
count and message are observable past a limit crossing.
"""

from __future__ import annotations

import math
import operator

from repro.errors import StepLimitExceeded, TrapError
from repro.execution.limits import DEFAULT_MAX_STEPS, INT_MAX, INT_MIN
from repro.execution.result import ExecStatus, ExecutionResult
from repro.fp.env import FPEnvironment
from repro.ir import nodes as ir

__all__ = ["Tape", "compile_tape"]


class _Unset:
    """Sentinel for never-assigned scalar registers."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()

# Instruction opcodes.  An instruction is a list ``[op, ...]``:
#   EXEC     [0, fn]              fn(st, R, A, out); fn leaves st exact
#   BRANCH   [1, fn, target, n]   cond with n static pending ticks
#                                 (settled by the VM); false -> target
#   JUMP     [2, target]
#   LOOPHEAD [3, fn, target, n]   like BRANCH; true additionally settles
#                                 the iteration tick and falls through
#   TICK     [4, n]               settle n pending ticks
#   RETURN   [5]                  settle the SReturn tick, halt
#   HALT     [6]
_EXEC, _BRANCH, _JUMP, _LOOPHEAD, _TICK, _RETURN, _HALT = range(7)


def _over(st: list) -> None:
    """Cross the step limit exactly like the interpreter's ``_tick``."""
    st[0] = st[1] + 1
    raise StepLimitExceeded(f"exceeded {st[1]} interpretation steps")


def _settle(st: list, n: int) -> None:
    s = st[0] + n
    if s > st[1]:
        _over(st)
    st[0] = s


def _trap_at(st: list, s: int, msg: str) -> None:
    """Trap with ``s`` total steps — unless a pending tick crossed the
    limit first, in which case the step limit wins (as it would have
    fired earlier in tree order)."""
    if s > st[1]:
        _over(st)
    st[0] = s
    raise TrapError(msg)


_CMP_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _cmp_impl(op: str, fp: bool):
    base = _CMP_OPS[op]
    if fp:
        ne = 1 if op == "!=" else 0

        def impl(a, b, _base=base, _ne=ne):
            if a != a or b != b:
                return _ne  # NaN: only != is true
            return 1 if _base(a, b) else 0

        return impl

    def impl(a, b, _base=base):
        return 1 if _base(a, b) else 0

    return impl


def _compile_printf(fmt: str, nargs: int):
    """Precompile the :func:`_c_printf` scan of a static format string.

    Returns a render plan of ``(kind, a, b)`` entries — literal text,
    ``%d/%i`` argument, or ``format()`` spec argument — or ``None`` when
    the format consumes more conversions than arguments (a trap replayed
    at run time, after argument evaluation, exactly like the
    interpreter).
    """
    plan: list[tuple] = []
    lit: list[str] = []

    def flush() -> None:
        if lit:
            plan.append((0, "".join(lit), None))
            lit.clear()

    ai = 0
    i = 0
    while i < len(fmt):
        c = fmt[i]
        if c == "\\" and i + 1 < len(fmt):
            esc = fmt[i + 1]
            lit.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(esc, esc))
            i += 2
            continue
        if c == "%" and i + 1 < len(fmt):
            j = i + 1
            while j < len(fmt) and (fmt[j].isdigit() or fmt[j] == "."):
                j += 1
            if j < len(fmt) and fmt[j] in "dieEfgG%":
                conv = fmt[j]
                spec = fmt[i + 1 : j]
                if conv == "%":
                    lit.append("%")
                else:
                    if ai >= nargs:
                        return None
                    flush()
                    if conv in "di":
                        plan.append((1, ai, None))
                    else:
                        prec = spec[spec.index(".") + 1 :] if "." in spec else "6"
                        plan.append((2, ai, f".{prec}{conv}"))
                    ai += 1
                i = j + 1
                continue
        lit.append(c)
        i += 1
    flush()
    return plan


def _render(args: list, plan: list) -> str:
    parts = []
    for kind, a, b in plan:
        if kind == 0:
            parts.append(a)
        elif kind == 1:
            parts.append(str(int(args[a])))
        else:
            parts.append(format(float(args[a]), b))
    return "".join(parts)


class Tape:
    """One kernel lowered for one environment, runnable on many inputs."""

    __slots__ = ("kernel", "env", "code", "n_regs", "n_arrays", "binders")

    def __init__(self, kernel: ir.Kernel, env: FPEnvironment, code: list,
                 n_regs: int, n_arrays: int, binders: list) -> None:
        self.kernel = kernel
        self.env = env
        self.code = code
        self.n_regs = n_regs
        self.n_arrays = n_arrays
        self.binders = binders

    def run(self, inputs: tuple, max_steps: int = DEFAULT_MAX_STEPS) -> ExecutionResult:
        """Execute on one input vector; same contract as ``Interpreter.run``."""
        st = [0, max_steps]
        printed: list[float] = []
        stdout: list[str] = []
        try:
            if len(inputs) != len(self.binders):
                raise TrapError(
                    f"kernel takes {len(self.binders)} inputs, got {len(inputs)}"
                )
            R = [_UNSET] * self.n_regs
            A: list = [None] * self.n_arrays
            for bind, value in zip(self.binders, inputs):
                bind(value, R, A)
            out = (printed, stdout)
            code = self.code
            pc = 0
            while True:
                ins = code[pc]
                op = ins[0]
                if op == 0:  # EXEC
                    ins[1](st, R, A, out)
                    pc += 1
                elif op == 1:  # BRANCH
                    v = ins[1](st, R, A)
                    n = ins[3]
                    if n:
                        s = st[0] + n
                        if s > st[1]:
                            _over(st)
                        st[0] = s
                    pc = pc + 1 if v else ins[2]
                elif op == 3:  # LOOPHEAD
                    v = ins[1](st, R, A)
                    n = ins[3] + 1 if v else ins[3]
                    if n:
                        s = st[0] + n
                        if s > st[1]:
                            _over(st)
                        st[0] = s
                    pc = pc + 1 if v else ins[2]
                elif op == 2:  # JUMP
                    pc = ins[1]
                elif op == 4:  # TICK
                    s = st[0] + ins[1]
                    if s > st[1]:
                        _over(st)
                    st[0] = s
                    pc += 1
                elif op == 5:  # RETURN
                    s = st[0] + 1
                    if s > st[1]:
                        _over(st)
                    st[0] = s
                    break
                else:  # HALT
                    break
        except TrapError as e:
            return ExecutionResult(ExecStatus.TRAP, error=str(e), steps=st[0])
        except StepLimitExceeded as e:
            return ExecutionResult(ExecStatus.STEP_LIMIT, error=str(e), steps=st[0])
        return ExecutionResult(
            ExecStatus.OK,
            printed=tuple(printed),
            stdout="".join(stdout),
            steps=st[0],
        )


def compile_tape(kernel: ir.Kernel, env: FPEnvironment) -> Tape:
    """Lower ``kernel`` for ``env`` into a :class:`Tape`."""
    return _Compiler(kernel, env).compile()


def _child_nodes(node):
    for f in node.__dataclass_fields__:
        v = getattr(node, f)
        if hasattr(v, "__dataclass_fields__"):
            yield v
        elif isinstance(v, tuple):
            for item in v:
                if hasattr(item, "__dataclass_fields__"):
                    yield item


class _Compiler:
    def __init__(self, kernel: ir.Kernel, env: FPEnvironment) -> None:
        self.kernel = kernel
        self.env = env
        self.scalars: dict[str, int] = {}
        self.arrays: dict[str, int] = {}
        self.code: list[list] = []
        self._collect_slots()

    # -- slot allocation ---------------------------------------------------------

    def _collect_slots(self) -> None:
        def scalar(name: str) -> None:
            self.scalars.setdefault(name, len(self.scalars))

        def array(name: str) -> None:
            self.arrays.setdefault(name, len(self.arrays))

        for p in self.kernel.params:
            array(p.name) if p.is_pointer else scalar(p.name)
        stack = list(self.kernel.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ir.Load, ir.SAssign)):
                scalar(node.name)
            elif isinstance(
                node,
                (ir.LoadElem, ir.SDeclArray, ir.SStoreElem, ir.SVecStore,
                 ir.SMaskedStore, ir.VecLoad, ir.VecMaskedLoad),
            ):
                array(node.name)
            stack.extend(_child_nodes(node))

    # -- compilation entry -------------------------------------------------------

    def compile(self) -> Tape:
        for s in self.kernel.body:
            self._stmt(s)
        self.code.append([_HALT])
        return Tape(
            self.kernel,
            self.env,
            self.code,
            len(self.scalars),
            len(self.arrays),
            [self._binder(p) for p in self.kernel.params],
        )

    def _binder(self, p: ir.Param):
        if p.is_pointer:
            slot = self.arrays[p.name]
            canon = self.env.canon_impl(p.scalar_ty)
            name = p.name

            def bind(value, R, A, _slot=slot, _canon=canon, _name=name):
                try:
                    elems = [float(v) for v in value]
                except TypeError:
                    raise TrapError(
                        f"parameter {_name!r} needs a sequence input"
                    ) from None
                A[_slot] = [_canon(v) for v in elems]

            return bind
        slot = self.scalars[p.name]
        if p.ty == "int":
            def bind(value, R, A, _slot=slot):
                v = int(value)
                if not INT_MIN <= v <= INT_MAX:
                    raise TrapError(f"signed integer overflow: {v}")
                R[_slot] = v

            return bind
        canon = self.env.canon_impl(p.ty)

        def bind(value, R, A, _slot=slot, _canon=canon):
            R[_slot] = _canon(float(value))

        return bind

    # -- expression compilation --------------------------------------------------
    #
    # ``_expr(e, off) -> (fn, cost)``.  ``off`` is the number of pending
    # (unsettled) ticks when ``fn`` is entered.  ``cost`` is an int when
    # the node consumes a statically known number of ticks on its
    # non-trap path and leaves ``st`` untouched (the caller settles);
    # ``cost`` is ``None`` when the node is self-accounting: it settles
    # everything (including ``off``) and returns with ``st`` exact.

    def _expr(self, e: ir.Expr, off: int):
        fn = self._DISPATCH.get(type(e))
        if fn is None:
            return self._unknown(e, off)
        return fn(self, e, off)

    def _settled(self, e: ir.Expr, base: int):
        """A closure returning the value with ``st`` exact on return."""
        f, c = self._expr(e, base)
        if c is None:
            return f
        n = base + c

        def g(st, R, A, _f=f, _n=n):
            v = _f(st, R, A)
            s = st[0] + _n
            if s > st[1]:
                _over(st)
            st[0] = s
            return v

        return g

    def _children(self, exprs, off: int):
        """Compile strict children evaluated left-to-right.

        Returns ``(vals_fn, cost, p_op)``: ``vals_fn(st, R, A)`` yields
        the child values as a list; ``cost`` is the node's total static
        tick count (entry + children) or ``None``; ``p_op`` is the
        pending-tick offset at the point the node's own operation runs.
        """
        parts = []
        pending = off + 1  # the node's entry tick
        total = 1
        static = True
        for e in exprs:
            f, c = self._expr(e, pending)
            if c is None:
                static = False
                total = None
                pending = 0
                parts.append((f, True))
            else:
                pending += c
                if static:
                    total += c
                parts.append((f, False))
        fs = tuple(f for f, _ in parts)
        if static:
            if len(fs) == 1:
                f0 = fs[0]

                def vals(st, R, A, _f=f0):
                    return [_f(st, R, A)]
            elif len(fs) == 2:
                f0, f1 = fs

                def vals(st, R, A, _f0=f0, _f1=f1):
                    return [_f0(st, R, A), _f1(st, R, A)]
            else:
                def vals(st, R, A, _fs=fs):
                    return [f(st, R, A) for f in _fs]
            return vals, total, pending

        def vals(st, R, A, _fs=fs):
            return [f(st, R, A) for f in _fs]

        return vals, None, pending

    def _lift(self, exprs, off: int, apply):
        """Build a node from strict children and ``apply(st, p, vals)``.

        ``apply`` receives the pending-tick offset ``p`` to pass to
        :func:`_trap_at` for its own trap sites (0 when ``st`` is already
        exact).
        """
        vals_fn, cost, p_op = self._children(exprs, off)
        if cost is not None:
            def fn(st, R, A, _vf=vals_fn, _ap=apply, _p=p_op):
                return _ap(st, _p, _vf(st, R, A))

            return fn, cost

        trailing = p_op

        def fn(st, R, A, _vf=vals_fn, _ap=apply, _t=trailing):
            vals = _vf(st, R, A)
            if _t:
                _settle(st, _t)
            return _ap(st, 0, vals)

        return fn, None

    # -- leaves ------------------------------------------------------------------

    def _c_const(self, e, off: int):
        v = e.value

        def fn(st, R, A, _v=v):
            return _v

        return fn, 1

    def _c_vecconst(self, e, off: int):
        v = e.values

        def fn(st, R, A, _v=v):
            return _v

        return fn, 1

    def _c_load(self, e, off: int):
        slot = self.scalars[e.name]
        msg = f"read of unset variable {e.name!r}"
        p = off + 1

        def fn(st, R, A, _s=slot, _p=p, _m=msg):
            v = R[_s]
            if v is _UNSET:
                _trap_at(st, st[0] + _p, _m)
            return v

        return fn, 1

    # -- array reads -------------------------------------------------------------

    def _array_at(self, st, pending, slot, name, A):
        arr = A[slot]
        if arr is None:
            _trap_at(st, st[0] + pending, f"no array named {name!r}")
        return arr

    def _c_loadelem(self, e, off: int):
        slot = self.arrays[e.name]
        name = e.name
        f_idx, c_idx = self._expr(e.index, off + 1)
        p_arr = off + 1
        if c_idx is not None:
            p_chk = off + 1 + c_idx

            def fn(st, R, A, _slot=slot, _name=name, _f=f_idx, _pa=p_arr, _pc=p_chk):
                arr = A[_slot]
                if arr is None:
                    _trap_at(st, st[0] + _pa, f"no array named {_name!r}")
                pos = _f(st, R, A)
                if not 0 <= pos < len(arr):
                    _trap_at(
                        st, st[0] + _pc,
                        f"index {pos} out of bounds for {_name}[{len(arr)}]",
                    )
                v = arr[pos]
                if v is None:
                    _trap_at(
                        st, st[0] + _pc,
                        f"read of uninitialized element {_name}[{pos}]",
                    )
                return v

            return fn, 1 + c_idx

        def fn(st, R, A, _slot=slot, _name=name, _f=f_idx, _pa=p_arr):
            arr = A[_slot]
            if arr is None:
                _trap_at(st, st[0] + _pa, f"no array named {_name!r}")
            pos = _f(st, R, A)  # self-settling
            if not 0 <= pos < len(arr):
                raise TrapError(f"index {pos} out of bounds for {_name}[{len(arr)}]")
            v = arr[pos]
            if v is None:
                raise TrapError(f"read of uninitialized element {_name}[{pos}]")
            return v

        return fn, None

    # -- scalar FP ---------------------------------------------------------------

    def _c_fbin(self, e, off: int):
        impl = self.env.op_impl(e.op, e.ty)
        lf, lc = self._expr(e.left, off + 1)
        if lc is not None:
            rf, rc = self._expr(e.right, off + 1 + lc)
            if rc is not None:
                def fn(st, R, A, _op=impl, _l=lf, _r=rf):
                    return _op(_l(st, R, A), _r(st, R, A))

                return fn, 1 + lc + rc

            def fn(st, R, A, _op=impl, _l=lf, _r=rf):
                a = _l(st, R, A)
                return _op(a, _r(st, R, A))

            return fn, None
        rf_s = self._settled(e.right, 0)

        def fn(st, R, A, _op=impl, _l=lf, _r=rf_s):
            a = _l(st, R, A)
            return _op(a, _r(st, R, A))

        return fn, None

    def _c_fneg(self, e, off: int):
        impl = self.env.neg_impl(e.ty)
        f, c = self._expr(e.operand, off + 1)
        if c is not None:
            def fn(st, R, A, _op=impl, _f=f):
                return _op(_f(st, R, A))

            return fn, 1 + c

        def fn(st, R, A, _op=impl, _f=f):
            return _op(_f(st, R, A))

        return fn, None

    def _c_fma(self, e, off: int):
        impl = self.env.fma_impl(e.ty)

        def apply(st, p, vals, _op=impl):
            return _op(vals[0], vals[1], vals[2])

        return self._lift((e.a, e.b, e.c), off, apply)

    def _c_fcall(self, e, off: int):
        impl = self.env.call_impl(e.name, e.ty)

        def apply(st, p, vals, _op=impl):
            return _op(tuple(vals))

        return self._lift(e.args, off, apply)

    # -- integers ----------------------------------------------------------------

    def _c_ibin(self, e, off: int):
        op = e.op
        if op in "+-*":
            lf, lc = self._expr(e.left, off + 1)
            if lc is not None:
                rf, rc = self._expr(e.right, off + 1 + lc)
                if rc is not None:
                    # Hot path (loop index arithmetic): direct nested
                    # closure, no vals/apply indirection.
                    p = off + 1 + lc + rc
                    pyop = {"+": operator.add, "-": operator.sub,
                            "*": operator.mul}[op]

                    def fn(st, R, A, _op=pyop, _l=lf, _r=rf, _p=p,
                           _lo=INT_MIN, _hi=INT_MAX):
                        r = _op(_l(st, R, A), _r(st, R, A))
                        if _lo <= r <= _hi:
                            return r
                        _trap_at(st, st[0] + _p, f"signed integer overflow: {r}")

                    return fn, 1 + lc + rc
            pyop = {"+": operator.add, "-": operator.sub, "*": operator.mul}[op]

            def apply(st, p, vals, _op=pyop):
                r = _op(vals[0], vals[1])
                if INT_MIN <= r <= INT_MAX:
                    return r
                _trap_at(st, st[0] + p, f"signed integer overflow: {r}")

            return self._lift((e.left, e.right), off, apply)
        div = op == "/"

        def apply(st, p, vals, _div=div):
            a, b = vals
            if b == 0:
                _trap_at(st, st[0] + p, "integer division by zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            r = q if _div else a - q * b  # C remainder: sign of dividend
            if INT_MIN <= r <= INT_MAX:
                return r
            _trap_at(st, st[0] + p, f"signed integer overflow: {r}")

        return self._lift((e.left, e.right), off, apply)

    def _c_ineg(self, e, off: int):
        def apply(st, p, vals):
            r = -vals[0]
            if INT_MIN <= r <= INT_MAX:
                return r
            _trap_at(st, st[0] + p, f"signed integer overflow: {r}")

        return self._lift((e.operand,), off, apply)

    def _c_compare(self, e, off: int):
        impl = _cmp_impl(e.op, e.fp)
        lf, lc = self._expr(e.left, off + 1)
        if lc is not None:
            rf, rc = self._expr(e.right, off + 1 + lc)
            if rc is not None:
                # Hot path (loop conditions): direct nested closure.
                def fn(st, R, A, _op=impl, _l=lf, _r=rf):
                    return _op(_l(st, R, A), _r(st, R, A))

                return fn, 1 + lc + rc

        def apply(st, p, vals, _op=impl):
            return _op(vals[0], vals[1])

        return self._lift((e.left, e.right), off, apply)

    # -- short-circuit (self-accounting) -----------------------------------------

    def _c_logic(self, e, off: int):
        lf = self._settled(e.left, off + 1)
        rf = self._settled(e.right, 0)
        if e.op == "&&":
            def fn(st, R, A, _l=lf, _r=rf):
                if _l(st, R, A) != 0:
                    return 1 if _r(st, R, A) != 0 else 0
                return 0
        else:
            def fn(st, R, A, _l=lf, _r=rf):
                if _l(st, R, A) != 0:
                    return 1
                return 1 if _r(st, R, A) != 0 else 0
        return fn, None

    def _c_not(self, e, off: int):
        def apply(st, p, vals):
            return 0 if vals[0] != 0 else 1

        return self._lift((e.operand,), off, apply)

    def _c_select(self, e, off: int):
        cf = self._settled(e.cond, off + 1)
        tf = self._settled(e.then, 0)
        of = self._settled(e.other, 0)

        def fn(st, R, A, _c=cf, _t=tf, _o=of):
            if _c(st, R, A) != 0:
                return _t(st, R, A)
            return _o(st, R, A)

        return fn, None

    # -- conversions -------------------------------------------------------------

    def _c_sitofp(self, e, off: int):
        canon = self.env.canon_impl(e.ty)

        def apply(st, p, vals, _c=canon):
            return _c(float(vals[0]))

        return self._lift((e.operand,), off, apply)

    def _c_fptosi(self, e, off: int):
        def apply(st, p, vals):
            v = vals[0]
            if math.isnan(v) or math.isinf(v) or not INT_MIN <= v <= INT_MAX:
                _trap_at(st, st[0] + p, f"invalid float->int conversion of {v!r}")
            return math.trunc(v)

        return self._lift((e.operand,), off, apply)

    def _c_fpext(self, e, off: int):
        f, c = self._expr(e.operand, off + 1)
        if c is not None:
            return f, 1 + c
        return f, None  # float values are exact doubles

    def _c_fptrunc(self, e, off: int):
        canon = self.env.canon_impl("float")  # nan/inf pass through canon

        def apply(st, p, vals, _c=canon):
            return _c(vals[0])

        return self._lift((e.operand,), off, apply)

    # -- vectors -----------------------------------------------------------------

    def _c_vecsplat(self, e, off: int):
        lanes = e.lanes

        def apply(st, p, vals, _n=lanes):
            return (vals[0],) * _n

        return self._lift((e.operand,), off, apply)

    def _c_veciota(self, e, off: int):
        lanes = e.lanes

        def apply(st, p, vals, _n=lanes):
            base = vals[0]
            out = []
            for j in range(_n):
                v = base + j
                if not INT_MIN <= v <= INT_MAX:
                    _trap_at(st, st[0] + p, f"signed integer overflow: {v}")
                out.append(v)
            return tuple(out)

        return self._lift((e.base,), off, apply)

    def _c_vecload(self, e, off: int):
        slot = self.arrays[e.name]
        name = e.name
        lanes = e.lanes
        p_arr = off + 1
        f_raw, c_idx = self._expr(e.index, off + 1)
        if c_idx is not None:
            p_chk = off + 1 + c_idx

            def fn(st, R, A, _slot=slot, _name=name, _n=lanes, _f=f_raw,
                   _pa=p_arr, _pc=p_chk):
                arr = A[_slot]
                if arr is None:
                    _trap_at(st, st[0] + _pa, f"no array named {_name!r}")
                idx = _f(st, R, A)
                if not 0 <= idx <= len(arr) - _n:
                    _trap_at(
                        st, st[0] + _pc,
                        f"vector index {idx}..{idx + _n - 1} out of bounds "
                        f"for {_name}[{len(arr)}]",
                    )
                out = []
                for j in range(_n):
                    v = arr[idx + j]
                    if v is None:
                        _trap_at(
                            st, st[0] + _pc,
                            f"read of uninitialized element {_name}[{idx + j}]",
                        )
                    out.append(v)
                return tuple(out)

            return fn, 1 + c_idx

        def fn(st, R, A, _slot=slot, _name=name, _n=lanes, _f=f_raw, _pa=p_arr):
            arr = A[_slot]
            if arr is None:
                _trap_at(st, st[0] + _pa, f"no array named {_name!r}")
            idx = _f(st, R, A)  # self-settling
            if not 0 <= idx <= len(arr) - _n:
                raise TrapError(
                    f"vector index {idx}..{idx + _n - 1} out of bounds "
                    f"for {_name}[{len(arr)}]"
                )
            out = []
            for j in range(_n):
                v = arr[idx + j]
                if v is None:
                    raise TrapError(
                        f"read of uninitialized element {_name}[{idx + j}]"
                    )
                out.append(v)
            return tuple(out)

        return fn, None

    def _c_vecsitofp(self, e, off: int):
        canon = self.env.canon_impl(e.ty)

        def apply(st, p, vals, _c=canon):
            return tuple(_c(float(v)) for v in vals[0])

        return self._lift((e.operand,), off, apply)

    def _c_vecbin(self, e, off: int):
        impl = self.env.op_impl(e.op, e.ty)

        def apply(st, p, vals, _op=impl):
            return tuple(map(_op, vals[0], vals[1]))

        return self._lift((e.left, e.right), off, apply)

    def _c_vecneg(self, e, off: int):
        impl = self.env.neg_impl(e.ty)

        def apply(st, p, vals, _op=impl):
            return tuple(map(_op, vals[0]))

        return self._lift((e.operand,), off, apply)

    def _c_vecfma(self, e, off: int):
        impl = self.env.fma_impl(e.ty)

        def apply(st, p, vals, _op=impl):
            return tuple(map(_op, vals[0], vals[1], vals[2]))

        return self._lift((e.a, e.b, e.c), off, apply)

    def _c_veccall(self, e, off: int):
        # veccall_impl binds the vector math library when the environment
        # carries one (the vec-libm tier) and the scalar libm otherwise.
        impl = self.env.veccall_impl(e.name, e.ty)
        lanes = e.lanes

        def apply(st, p, vals, _op=impl, _n=lanes):
            return tuple(
                _op(tuple(arg[j] for arg in vals)) for j in range(_n)
            )

        return self._lift(e.args, off, apply)

    def _c_vecfpext(self, e, off: int):
        f, c = self._expr(e.operand, off + 1)
        if c is not None:
            return f, 1 + c
        return f, None  # float lanes are exact doubles

    def _c_vecfptrunc(self, e, off: int):
        canon = self.env.canon_impl("float")  # nan/inf pass through canon

        def apply(st, p, vals, _c=canon):
            return tuple(map(_c, vals[0]))

        return self._lift((e.operand,), off, apply)

    def _c_veccmp(self, e, off: int):
        impl = _cmp_impl(e.op, fp=True)

        def apply(st, p, vals, _op=impl):
            return tuple(map(_op, vals[0], vals[1]))

        return self._lift((e.left, e.right), off, apply)

    def _c_vecselect(self, e, off: int):
        # Both arms evaluate in full — the if-conversion observable.
        def apply(st, p, vals):
            return tuple(
                t if m else o for m, t, o in zip(vals[0], vals[1], vals[2])
            )

        return self._lift((e.mask, e.then, e.other), off, apply)

    def _c_vecmaskedload(self, e, off: int):
        slot = self.arrays[e.name]
        name = e.name
        lanes = e.lanes
        invert = e.invert
        f_mask, c_mask = self._expr(e.mask, off + 1)
        if c_mask is not None:
            p_arr = off + 1 + c_mask
            f_idx, c_idx = self._expr(e.index, p_arr)
        else:
            p_arr = 0
            f_idx, c_idx = self._expr(e.index, 0)
        if c_mask is not None and c_idx is not None:
            p_chk = p_arr + c_idx

            def fn(st, R, A, _slot=slot, _name=name, _n=lanes, _inv=invert,
                   _fm=f_mask, _fi=f_idx, _pa=p_arr, _pc=p_chk):
                mask = _fm(st, R, A)
                arr = A[_slot]
                if arr is None:
                    _trap_at(st, st[0] + _pa, f"no array named {_name!r}")
                idx = _fi(st, R, A)
                out = []
                for j in range(_n):
                    active = not mask[j] if _inv else bool(mask[j])
                    if active:
                        pos = idx + j
                        if not 0 <= pos < len(arr):
                            _trap_at(
                                st, st[0] + _pc,
                                f"index {pos} out of bounds for {_name}[{len(arr)}]",
                            )
                        v = arr[pos]
                        if v is None:
                            _trap_at(
                                st, st[0] + _pc,
                                f"read of uninitialized element {_name}[{pos}]",
                            )
                        out.append(v)
                    else:
                        out.append(0.0)  # zeroing masking: no memory touch
                return tuple(out)

            return fn, 1 + c_mask + c_idx

        fm_s = self._settled(e.mask, off + 1)
        fi_s = self._settled(e.index, 0)

        def fn(st, R, A, _slot=slot, _name=name, _n=lanes, _inv=invert,
               _fm=fm_s, _fi=fi_s):
            mask = _fm(st, R, A)
            arr = A[_slot]
            if arr is None:
                raise TrapError(f"no array named {_name!r}")
            idx = _fi(st, R, A)
            out = []
            for j in range(_n):
                active = not mask[j] if _inv else bool(mask[j])
                if active:
                    pos = idx + j
                    if not 0 <= pos < len(arr):
                        raise TrapError(
                            f"index {pos} out of bounds for {_name}[{len(arr)}]"
                        )
                    v = arr[pos]
                    if v is None:
                        raise TrapError(
                            f"read of uninitialized element {_name}[{pos}]"
                        )
                    out.append(v)
                else:
                    out.append(0.0)
            return tuple(out)

        return fn, None

    def _c_vecreduce(self, e, off: int):
        combine = self.env.op_impl(e.op, e.ty)
        style = e.style

        if style == "ladder":
            def apply(st, p, vals, _op=combine):
                lanes = vals[0]
                acc = lanes[0]
                for v in lanes[1:]:
                    acc = _op(acc, v)
                return acc
        elif style == "butterfly":
            def apply(st, p, vals, _op=combine):
                lanes = list(vals[0])
                n = len(lanes)
                while n > 1:
                    m = (n + 1) // 2
                    for j in range(n - m):
                        lanes[j] = _op(lanes[j], lanes[j + m])
                    n = m
                return lanes[0]
        else:
            def apply(st, p, vals, _op=combine):
                # adjacent: pairwise neighbours per round, odd lane carries
                lanes = list(vals[0])
                while len(lanes) > 1:
                    nxt = [
                        _op(lanes[j], lanes[j + 1])
                        for j in range(0, len(lanes) - 1, 2)
                    ]
                    if len(lanes) % 2:
                        nxt.append(lanes[-1])
                    lanes = nxt
                return lanes[0]

        return self._lift((e.operand,), off, apply)

    def _unknown(self, e, off: int):
        msg = f"cannot evaluate {type(e).__name__}"
        p = off + 1

        def fn(st, R, A, _p=p, _m=msg):  # pragma: no cover - exhaustive
            _trap_at(st, st[0] + _p, _m)

        return fn, None

    _DISPATCH = {
        ir.FConst: _c_const,
        ir.IConst: _c_const,
        ir.VecConst: _c_vecconst,
        ir.Load: _c_load,
        ir.LoadElem: _c_loadelem,
        ir.FBin: _c_fbin,
        ir.FNeg: _c_fneg,
        ir.Fma: _c_fma,
        ir.FCall: _c_fcall,
        ir.IBin: _c_ibin,
        ir.INeg: _c_ineg,
        ir.Compare: _c_compare,
        ir.Logic: _c_logic,
        ir.Not: _c_not,
        ir.Select: _c_select,
        ir.SiToFp: _c_sitofp,
        ir.FpToSi: _c_fptosi,
        ir.FpExt: _c_fpext,
        ir.FpTrunc: _c_fptrunc,
        ir.VecSplat: _c_vecsplat,
        ir.VecIota: _c_veciota,
        ir.VecLoad: _c_vecload,
        ir.VecSiToFp: _c_vecsitofp,
        ir.VecFpExt: _c_vecfpext,
        ir.VecFpTrunc: _c_vecfptrunc,
        ir.VecBin: _c_vecbin,
        ir.VecNeg: _c_vecneg,
        ir.VecFma: _c_vecfma,
        ir.VecCall: _c_veccall,
        ir.VecCmp: _c_veccmp,
        ir.VecSelect: _c_vecselect,
        ir.VecMaskedLoad: _c_vecmaskedload,
        ir.VecReduce: _c_vecreduce,
    }

    # -- statement compilation ---------------------------------------------------

    def _emit(self, ins: list) -> int:
        self.code.append(ins)
        return len(self.code) - 1

    def _block(self, stmts) -> None:
        for s in stmts:
            self._stmt(s)

    def _stmt(self, s: ir.Stmt) -> None:
        if isinstance(s, ir.SAssign):
            slot = self.scalars[s.name]
            vf, vc = self._expr(s.value, 1)
            if vc is not None:
                n = 1 + vc

                def fn(st, R, A, out, _slot=slot, _vf=vf, _n=n):
                    v = _vf(st, R, A)
                    s0 = st[0] + _n
                    if s0 > st[1]:
                        _over(st)
                    st[0] = s0
                    R[_slot] = v
            else:
                def fn(st, R, A, out, _slot=slot, _vf=vf):
                    R[_slot] = _vf(st, R, A)

            self._emit([_EXEC, fn])
        elif isinstance(s, ir.SDeclArray):
            self._decl_array(s)
        elif isinstance(s, ir.SStoreElem):
            self._store_elem(s)
        elif isinstance(s, ir.SVecStore):
            self._vec_store(s)
        elif isinstance(s, ir.SMaskedStore):
            self._masked_store(s)
        elif isinstance(s, ir.SIf):
            cf, cc = self._expr(s.cond, 1)
            branch = self._emit([_BRANCH, cf, 0, 0 if cc is None else 1 + cc])
            self._block(s.then)
            if s.other:
                jump = self._emit([_JUMP, 0])
                self.code[branch][2] = len(self.code)
                self._block(s.other)
                self.code[jump][1] = len(self.code)
            else:
                self.code[branch][2] = len(self.code)
        elif isinstance(s, ir.SFor):
            self._emit([_TICK, 1])
            self._block(s.init)
            head = len(self.code)
            if s.cond is None:
                cf, cc = self._true_fn(), 0
            else:
                cf, cc = self._expr(s.cond, 0)
            loop = self._emit([_LOOPHEAD, cf, 0, cc if cc is not None else 0])
            self._block(s.body)
            self._block(s.step)
            self._emit([_JUMP, head])
            self.code[loop][2] = len(self.code)
        elif isinstance(s, ir.SWhile):
            self._emit([_TICK, 1])
            head = len(self.code)
            cf, cc = self._expr(s.cond, 0)
            loop = self._emit([_LOOPHEAD, cf, 0, cc if cc is not None else 0])
            self._block(s.body)
            self._emit([_JUMP, head])
            self.code[loop][2] = len(self.code)
        elif isinstance(s, ir.SPrint):
            self._print(s)
        elif isinstance(s, ir.SReturn):
            self._emit([_RETURN])
        else:  # pragma: no cover - exhaustive
            msg = f"cannot execute {type(s).__name__}"

            def fn(st, R, A, out, _m=msg):
                _trap_at(st, st[0] + 1, _m)

            self._emit([_EXEC, fn])

    @staticmethod
    def _true_fn():
        def fn(st, R, A):
            return 1

        return fn

    def _decl_array(self, s: ir.SDeclArray) -> None:
        slot = self.arrays[s.name]
        size = s.size
        if s.init is None:
            def fn(st, R, A, out, _slot=slot, _size=size):
                _settle(st, 1)
                A[_slot] = [None] * _size

            self._emit([_EXEC, fn])
            return
        # Init elements evaluate in sequence; settle each one exactly
        # (the first carries the statement's entry tick).
        fns = []
        base = 1
        for e in s.init:
            fns.append(self._settled(e, base))
            base = 0

        def fn(st, R, A, out, _slot=slot, _size=size, _fns=tuple(fns)):
            values: list = [float(f(st, R, A)) for f in _fns]
            if len(values) < _size:
                values.extend([0.0] * (_size - len(values)))
            A[_slot] = values

        self._emit([_EXEC, fn])

    def _store_elem(self, s: ir.SStoreElem) -> None:
        slot = self.arrays[s.name]
        name = s.name
        idx_f = self._settled(s.index, 1)
        val_f = self._settled(s.value, 0)

        def fn(st, R, A, out, _slot=slot, _name=name, _fi=idx_f, _fv=val_f):
            arr = A[_slot]
            if arr is None:
                _trap_at(st, st[0] + 1, f"no array named {_name!r}")
            idx = _fi(st, R, A)
            if not 0 <= idx < len(arr):
                raise TrapError(f"index {idx} out of bounds for {_name}[{len(arr)}]")
            arr[idx] = float(_fv(st, R, A))

        self._emit([_EXEC, fn])

    def _vec_store(self, s: ir.SVecStore) -> None:
        slot = self.arrays[s.name]
        name = s.name
        lanes = s.lanes
        idx_f = self._settled(s.index, 1)
        val_f = self._settled(s.value, 0)

        def fn(st, R, A, out, _slot=slot, _name=name, _n=lanes, _fi=idx_f,
               _fv=val_f):
            arr = A[_slot]
            if arr is None:
                _trap_at(st, st[0] + 1, f"no array named {_name!r}")
            idx = _fi(st, R, A)
            if not 0 <= idx <= len(arr) - _n:
                raise TrapError(
                    f"vector index {idx}..{idx + _n - 1} out of bounds "
                    f"for {_name}[{len(arr)}]"
                )
            values = _fv(st, R, A)
            for j in range(_n):
                arr[idx + j] = float(values[j])

        self._emit([_EXEC, fn])

    def _masked_store(self, s: ir.SMaskedStore) -> None:
        slot = self.arrays[s.name]
        name = s.name
        if s.lanes == 1:
            # Scalar predicated store short-circuits: a false mask skips
            # index, value and the write.
            mask_f = self._settled(s.mask, 1)
            idx_f = self._settled(s.index, 0)
            val_f = self._settled(s.value, 0)

            def fn(st, R, A, out, _slot=slot, _name=name, _fm=mask_f,
                   _fi=idx_f, _fv=val_f):
                if _fm(st, R, A) == 0:
                    return
                arr = A[_slot]
                if arr is None:
                    raise TrapError(f"no array named {_name!r}")
                idx = _fi(st, R, A)
                if not 0 <= idx < len(arr):
                    raise TrapError(
                        f"index {idx} out of bounds for {_name}[{len(arr)}]"
                    )
                arr[idx] = float(_fv(st, R, A))

            self._emit([_EXEC, fn])
            return
        lanes = s.lanes
        mask_f = self._settled(s.mask, 1)
        val_f = self._settled(s.value, 0)
        idx_f = self._settled(s.index, 0)

        def fn(st, R, A, out, _slot=slot, _name=name, _n=lanes, _fm=mask_f,
               _fv=val_f, _fi=idx_f):
            mask = _fm(st, R, A)
            values = _fv(st, R, A)
            arr = A[_slot]
            if arr is None:
                raise TrapError(f"no array named {_name!r}")
            idx = _fi(st, R, A)
            for j in range(_n):
                if not mask[j]:
                    continue
                pos = idx + j
                if not 0 <= pos < len(arr):
                    raise TrapError(
                        f"index {pos} out of bounds for {_name}[{len(arr)}]"
                    )
                arr[pos] = float(values[j])

        self._emit([_EXEC, fn])

    def _print(self, s: ir.SPrint) -> None:
        plan = _compile_printf(s.fmt, len(s.values))
        fns = []
        base = 1
        for v in s.values:
            fns.append(self._settled(v, base))
            base = 0
        arg_fns = tuple(fns)

        if plan is None:
            def fn(st, R, A, out, _fns=arg_fns):
                if not _fns:
                    _settle(st, 1)
                else:
                    for f in _fns:
                        f(st, R, A)
                raise TrapError("printf: more conversions than arguments")

            self._emit([_EXEC, fn])
            return

        def fn(st, R, A, out, _fns=arg_fns, _plan=plan):
            if not _fns:
                _settle(st, 1)
                args: list = []
            else:
                args = [f(st, R, A) for f in _fns]
            out[1].append(_render(args, _plan))
            printed = out[0]
            for v in args:
                if isinstance(v, float):
                    printed.append(v)

        self._emit([_EXEC, fn])
