"""Batched kernel execution: one compiled tape, many input sets.

The campaign engine's execute stage repeats the same kernel across every
input set of a run-shared group.  A :class:`KernelRunner` hoists the
per-kernel setup out of that loop — one :class:`~repro.execution.tape.Tape`
compile (or one reusable tree-walk interpreter) serves the whole batch —
and :func:`run_batch_task` is the picklable pool entry point that ships
*one* task per (kernel, input batch) instead of one per (kernel, input)
pair.

Three execution modes (``EXEC_MODES``):

* ``tree`` — the reference tree-walk interpreter, instantiated once per
  kernel and reset between inputs;
* ``tape`` — the compiled tape executor (default; bit-identical);
* ``check`` — run both and raise
  :class:`~repro.errors.ExecutionDivergence` on any bit of difference
  (status, error message, step count, stdout, printed-value bits).
  Results are compared on raw IEEE bits — never dataclass equality,
  which NaN payloads would defeat.

Tapes are cached per process, keyed on (kernel fingerprint, environment
fingerprint) content hashes, so process-pool workers compile each kernel
at most once no matter how tasks are chunked.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ExecutionDivergence
from repro.execution.interp import Interpreter
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.execution.result import ExecutionResult
from repro.execution.tape import Tape, compile_tape
from repro.fp.bits import double_to_bits
from repro.fp.env import FPEnvironment
from repro.ir import nodes as ir

__all__ = [
    "EXEC_MODES",
    "DEFAULT_EXEC_MODE",
    "KernelRunner",
    "BatchTask",
    "run_batch",
    "run_batch_task",
    "result_key",
]

#: Valid execute-stage modes, in reference-first order.
EXEC_MODES = ("tree", "tape", "check")

DEFAULT_EXEC_MODE = "tape"

#: A picklable batched execution unit: ``(kernel, env, inputs_batch,
#: max_steps, exec_mode, cache_key)``.  ``inputs_batch`` is a tuple of
#: input vectors; ``cache_key`` is an optional precomputed content key
#: for the per-process tape cache (``None`` derives it on demand).
BatchTask = tuple

#: Per-process compiled-tape cache.  Bounded so a long-lived worker
#: recycling thousands of kernels cannot grow without limit.
_TAPE_CACHE_CAPACITY = 512
_tape_cache: OrderedDict[tuple, Tape] = OrderedDict()


def _content_key(kernel: ir.Kernel, env: FPEnvironment) -> tuple:
    # Lazy import: toolchains.cache imports execution modules at package
    # init; importing it at module scope here would cycle.
    from repro.toolchains.cache import env_fingerprint, kernel_fingerprint

    return (kernel_fingerprint(kernel), env_fingerprint(env))


def _cached_tape(kernel: ir.Kernel, env: FPEnvironment, cache_key) -> Tape:
    key = cache_key if cache_key is not None else _content_key(kernel, env)
    tape = _tape_cache.get(key)
    if tape is None:
        tape = compile_tape(kernel, env)
        _tape_cache[key] = tape
        if len(_tape_cache) > _TAPE_CACHE_CAPACITY:
            _tape_cache.popitem(last=False)
    else:
        _tape_cache.move_to_end(key)
    return tape


def result_key(r: ExecutionResult) -> tuple:
    """Strict bitwise identity key for an execution result."""
    return (
        r.status,
        r.error,
        r.steps,
        r.stdout,
        tuple(double_to_bits(v) for v in r.printed),
    )


class KernelRunner:
    """One kernel's per-run state, hoisted across an input batch.

    In ``tree`` mode a single :class:`Interpreter` is reused (reset
    between inputs) instead of re-instantiated per input; in ``tape``
    mode the compiled tape comes from the per-process cache; ``check``
    runs both and verifies bit identity.
    """

    __slots__ = ("kernel", "env", "mode", "_interp", "_tape")

    def __init__(
        self,
        kernel: ir.Kernel,
        env: FPEnvironment,
        mode: str = DEFAULT_EXEC_MODE,
        cache_key=None,
    ) -> None:
        if mode not in EXEC_MODES:
            raise ValueError(
                f"exec mode must be one of {', '.join(EXEC_MODES)}, got {mode!r}"
            )
        self.kernel = kernel
        self.env = env
        self.mode = mode
        self._interp = None if mode == "tape" else Interpreter(kernel, env)
        self._tape = None if mode == "tree" else _cached_tape(kernel, env, cache_key)

    def run(self, inputs: tuple, max_steps: int = DEFAULT_MAX_STEPS) -> ExecutionResult:
        if self.mode == "tape":
            return self._tape.run(inputs, max_steps)
        interp = self._interp
        interp.reset()
        interp.max_steps = max_steps
        tree = interp.run(inputs)
        if self.mode == "tree":
            return tree
        tape = self._tape.run(inputs, max_steps)
        if result_key(tree) != result_key(tape):
            raise ExecutionDivergence(
                f"tape result diverges from interpreter for kernel "
                f"{self.kernel.name!r}: tree={result_key(tree)!r} "
                f"tape={result_key(tape)!r}"
            )
        return tree


def run_batch(
    kernel: ir.Kernel,
    env: FPEnvironment,
    inputs_batch: tuple,
    max_steps: int = DEFAULT_MAX_STEPS,
    mode: str = DEFAULT_EXEC_MODE,
    cache_key=None,
) -> tuple[ExecutionResult, ...]:
    """Execute ``kernel`` on every input vector of ``inputs_batch``."""
    runner = KernelRunner(kernel, env, mode, cache_key)
    return tuple(runner.run(inputs, max_steps) for inputs in inputs_batch)


def run_batch_task(task: BatchTask) -> tuple[ExecutionResult, ...]:
    """Unpack one :data:`BatchTask` and run it (pool ``map`` entry point)."""
    kernel, env, inputs_batch, max_steps, mode, cache_key = task
    return run_batch(kernel, env, inputs_batch, max_steps, mode, cache_key)
