"""Deterministic IR interpreter — the 'hardware' the simulated binaries run on."""

from repro.execution.interp import Interpreter
from repro.execution.result import ExecutionResult, ExecStatus
from repro.execution.limits import DEFAULT_MAX_STEPS

__all__ = ["Interpreter", "ExecutionResult", "ExecStatus", "DEFAULT_MAX_STEPS"]
