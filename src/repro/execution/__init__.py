"""Deterministic IR interpreter — the 'hardware' the simulated binaries run on."""

from repro.execution.interp import Interpreter
from repro.execution.result import ExecutionResult, ExecStatus
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.execution.worker import run_kernel
from repro.execution.tape import Tape, compile_tape
from repro.execution.batch import (
    DEFAULT_EXEC_MODE,
    EXEC_MODES,
    KernelRunner,
    run_batch,
)

__all__ = [
    "Interpreter",
    "ExecutionResult",
    "ExecStatus",
    "DEFAULT_MAX_STEPS",
    "DEFAULT_EXEC_MODE",
    "EXEC_MODES",
    "KernelRunner",
    "Tape",
    "compile_tape",
    "run_kernel",
    "run_batch",
]
