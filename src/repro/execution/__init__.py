"""Deterministic IR interpreter — the 'hardware' the simulated binaries run on."""

from repro.execution.interp import Interpreter
from repro.execution.result import ExecutionResult, ExecStatus
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.execution.worker import run_kernel

__all__ = [
    "Interpreter",
    "ExecutionResult",
    "ExecStatus",
    "DEFAULT_MAX_STEPS",
    "run_kernel",
]
