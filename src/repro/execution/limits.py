"""Execution budgets.

Generated programs are small kernels, but mutation can produce deep nested
loops; the step budget bounds interpretation the way a watchdog timeout
bounds a real test harness.
"""

#: Interpreter steps (expression nodes + statements) before giving up.
DEFAULT_MAX_STEPS: int = 2_000_000

#: C int limits; signed overflow is UB and traps.
INT_MIN = -(2**31)
INT_MAX = 2**31 - 1
