"""Deterministic text rendering for the ``llm4fp corpus`` CLI.

Like :meth:`repro.triage.cluster.TriageReport.render`, every formatter
here is byte-deterministic per input: no timestamps unless the corpus
recorded one, no machine paths beyond what the caller passes, sorted
iteration everywhere.  CI diffs these outputs against golden files.
"""

from __future__ import annotations

from repro.corpus.store import DiffReport, IngestReport, TriggerCorpus, parse_key

__all__ = [
    "render_signature",
    "format_diff_report",
    "format_ingest_report",
    "format_corpus_list",
    "format_seeds",
]


def render_signature(key: str) -> str:
    """One human-readable line per signature: ``kinds :: cells``."""
    kinds, cells = parse_key(key)
    return f"{' '.join(kinds) or '-'} :: {' '.join(cells) or '-'}"


def format_diff_report(
    report: DiffReport, corpus: TriggerCorpus, checkpoints: int
) -> str:
    """The ``llm4fp corpus diff`` output: ONLY never-seen signatures.

    Each new signature is listed exactly once, sorted, with its trigger
    count; known signatures contribute a single summary count so the
    nightly log stops re-announcing them.
    """
    lines = [
        f"corpus: {corpus.path.name} — {len(corpus)} known signature(s)",
        f"checked: {checkpoints} checkpoint(s), {report.programs} programs, "
        f"{report.triggers} triggers, {report.distinct} distinct signature(s)",
        f"known signatures: {len(report.known_keys)}",
        f"new signatures: {len(report.new_keys)}",
    ]
    for key in report.new_keys:
        lines.append(f"  NEW x{report.counts.get(key, 0)} {render_signature(key)}")
    return "\n".join(lines)


def format_ingest_report(report: IngestReport, corpus: TriggerCorpus) -> str:
    lines = [
        f"ingest #{report.ingest_id} into {corpus.path.name}: "
        f"{report.label or '-'}",
        f"  model {report.model}"
        + (f", timestamp {report.timestamp}" if report.timestamp else ""),
        f"  {report.programs} programs, {report.triggers} triggers, "
        f"{report.distinct} distinct signature(s); {len(report.new_keys)} new, "
        f"{len(report.improved_keys)} seed(s) improved; corpus now holds "
        f"{len(corpus)}",
    ]
    for key in report.new_keys:
        lines.append(f"  NEW {render_signature(key)}")
    return "\n".join(lines)


def format_corpus_list(corpus: TriggerCorpus) -> str:
    """One row per signature: lifetime, count, seed size, identity."""
    lines = [f"corpus: {corpus.path.name} — {len(corpus)} signature(s)"]
    for entry in corpus.sorted_entries():
        first = f"#{entry.first_ingest}"
        if entry.first_timestamp:
            first += f" ({entry.first_timestamp})"
        last = f"#{entry.last_ingest}"
        if entry.last_timestamp:
            last += f" ({entry.last_timestamp})"
        stale = "" if entry.last_model == entry.first_model else " model-changed"
        lines.append(
            f"  x{entry.count} first={first} last={last} "
            f"seed={len(entry.seed_source)}ch{stale} "
            f"{render_signature(entry.key)}"
        )
    return "\n".join(lines)


def format_seeds(corpus: TriggerCorpus) -> str:
    """Every regression seed, sorted by key, source inline."""
    seeds = corpus.seeds()
    lines = [f"corpus: {corpus.path.name} — {len(seeds)} regression seed(s)"]
    for position, seed in enumerate(seeds):
        lines.append(
            f"--- seed {position}: {render_signature(seed.key)} "
            f"[from {seed.origin_label or '-'}#{seed.origin_index}]"
        )
        lines.append(seed.source.rstrip("\n"))
        lines.append(f"inputs: {seed.inputs!r}")
    return "\n".join(lines)
