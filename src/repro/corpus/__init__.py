"""Longitudinal trigger corpus: cross-campaign memory for root causes.

A campaign finds triggers; ``llm4fp triage`` clusters them within one
checkpoint set — and then forgets.  The corpus is the append-only store
that remembers: one entry per bisection-free cluster signature
(:func:`repro.triage.cluster.outcome_signature`), carrying when the
signature was first and last seen, under which compiler-model
fingerprint, and the smallest trigger program observed so far (the
regression seed).  On top of the store sit the two longitudinal
workflows:

* ``llm4fp corpus diff`` — report ONLY signatures never seen before, so
  a nightly run stops re-announcing known root causes;
* :class:`CorpusReplayGenerator` — a lifecycle generator that replays
  the stored regression seeds first, deterministically ordered and
  shard-partitioned, before handing off to any configured approach, so
  every campaign opens with a regression sweep.
"""

from repro.corpus.fingerprint import model_fingerprint
from repro.corpus.replay import CorpusReplayGenerator
from repro.corpus.report import (
    format_corpus_list,
    format_diff_report,
    format_ingest_report,
    format_seeds,
    render_signature,
)
from repro.corpus.store import (
    CorpusEntry,
    CorpusError,
    DiffReport,
    IngestReport,
    RegressionSeed,
    TriggerCorpus,
    parse_key,
    signature_key,
)

__all__ = [
    "CorpusEntry",
    "CorpusError",
    "CorpusReplayGenerator",
    "DiffReport",
    "IngestReport",
    "RegressionSeed",
    "TriggerCorpus",
    "format_corpus_list",
    "format_diff_report",
    "format_ingest_report",
    "format_seeds",
    "model_fingerprint",
    "parse_key",
    "render_signature",
    "signature_key",
]
