"""Append-only longitudinal trigger corpus, one JSONL file per fleet.

The file layout mirrors the repo's other durable logs
(:mod:`repro.difftest.store`, :mod:`repro.fleet.events`): a single
header line identifying the file kind and format version, then one
compact-JSON record per line, each fsync'd before the writer moves on,
with a crash-half-written tail truncated away on the next open.  Two
record kinds follow the header::

    {"kind": "ingest", "id": 1, "label": "nightly", "model": "…",
     "timestamp": "", "programs": 50, "triggers": 7, "distinct": 3,
     "new": 2}
    {"kind": "sig", "ingest": 1, "key": "[[…kinds…],[…cells…]]",
     "count": 4, "seed": {"source": "…", "inputs": […], "label": "…",
     "index": 12}}

``sig`` records carry a ``seed`` block only when the signature is new
or a strictly smaller trigger program was found, so the file stays an
append-only event log whose replay rebuilds the exact in-memory state.

Byte determinism is a contract, not an accident: nothing derived from
wall-clock, machine paths, or dict iteration order ever reaches the
file.  Ingests are numbered, signatures within an ingest are written in
sorted-key order, timestamps are caller-supplied strings (empty unless
an operator passes one), and program inputs round-trip through the
checkpoint store's bit-exact hex codec.  Ingesting the same checkpoint
sequence into a fresh corpus therefore reproduces the same bytes,
whatever backend or shard topology produced the checkpoints.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.difftest.record import CampaignResult, ProgramOutcome
from repro.difftest.store import _dec_input, _enc_input
from repro.corpus.fingerprint import model_fingerprint
from repro.triage.cluster import TriageReport, outcome_signature

__all__ = [
    "CorpusError",
    "CorpusEntry",
    "RegressionSeed",
    "IngestReport",
    "DiffReport",
    "TriggerCorpus",
    "signature_key",
    "parse_key",
]

_FORMAT_VERSION = 1
_READABLE_VERSIONS = frozenset({1})


class CorpusError(ValueError):
    """Raised for corrupt, foreign, or future-versioned corpus files."""


def signature_key(kinds: Iterable[str], cells: Iterable[str]) -> str:
    """Stable string form of a (kinds, cells) cluster signature.

    Compact JSON of the two already-sorted tuples — lexicographically
    ordered keys sort deterministically, and :func:`parse_key` inverts
    the encoding exactly.
    """
    return json.dumps([list(kinds), list(cells)], separators=(",", ":"))


def parse_key(key: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Inverse of :func:`signature_key`."""
    try:
        kinds, cells = json.loads(key)
    except (ValueError, TypeError) as e:
        raise CorpusError(f"malformed signature key {key!r}") from e
    return tuple(kinds), tuple(cells)


@dataclass(frozen=True)
class RegressionSeed:
    """The smallest trigger program stored for one signature."""

    key: str
    source: str
    inputs: tuple
    origin_label: str
    origin_index: int

    @property
    def signature(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        return parse_key(self.key)


@dataclass
class CorpusEntry:
    """Everything the corpus remembers about one cluster signature."""

    key: str
    count: int = 0  # triggers ever ingested with this signature
    first_ingest: int = 0
    last_ingest: int = 0
    first_label: str = ""
    last_label: str = ""
    first_timestamp: str = ""
    last_timestamp: str = ""
    first_model: str = ""
    last_model: str = ""
    seed_source: str = ""
    seed_inputs: tuple = ()
    seed_origin_label: str = ""
    seed_origin_index: int = -1

    @property
    def kinds(self) -> tuple[str, ...]:
        return parse_key(self.key)[0]

    @property
    def cells(self) -> tuple[str, ...]:
        return parse_key(self.key)[1]

    @property
    def seed(self) -> RegressionSeed:
        return RegressionSeed(
            key=self.key,
            source=self.seed_source,
            inputs=self.seed_inputs,
            origin_label=self.seed_origin_label,
            origin_index=self.seed_origin_index,
        )


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`TriggerCorpus.ingest` call did."""

    ingest_id: int
    label: str
    model: str
    timestamp: str
    programs: int  # outcomes examined (all programs)
    triggers: int  # triggering programs / weighted cluster members
    new_keys: tuple[str, ...]  # signatures never seen before, sorted
    known_keys: tuple[str, ...]  # signatures already in the corpus, sorted
    improved_keys: tuple[str, ...]  # known signatures whose seed shrank

    @property
    def distinct(self) -> int:
        return len(self.new_keys) + len(self.known_keys)


@dataclass(frozen=True)
class DiffReport:
    """A read-only comparison of triggers against the corpus."""

    programs: int
    triggers: int
    new_keys: tuple[str, ...]  # sorted, each exactly once
    known_keys: tuple[str, ...]
    counts: dict = field(default_factory=dict)  # key -> trigger count

    @property
    def distinct(self) -> int:
        return len(self.new_keys) + len(self.known_keys)


@dataclass(frozen=True)
class _Candidate:
    """One (signature, trigger program) pair normalized for ingest."""

    key: str
    source: str
    inputs: tuple
    label: str
    index: int
    weight: int = 1


def _seed_rank(source: str) -> tuple[int, str]:
    """Smaller-is-better ordering, matching triage's representative."""
    return (len(source), source)


def _candidates_of(source, label: str) -> tuple[list[_Candidate], int, int]:
    """Normalize a checkpoint result / triage report / outcome iterable
    into ingest candidates; returns (candidates, programs, triggers)."""
    if isinstance(source, TriageReport):
        candidates = []
        for cluster in source.clusters:
            rep = cluster.representative
            candidates.append(
                _Candidate(
                    key=signature_key(cluster.kinds, cluster.cells),
                    source=rep.reduced_source,
                    inputs=tuple(rep.inputs),
                    label=rep.source_label or label,
                    index=rep.index,
                    weight=cluster.count,
                )
            )
        return candidates, source.programs_seen, source.triggers
    if isinstance(source, CampaignResult):
        outcomes = list(source.outcomes)
    else:
        outcomes = list(source)
    triggering = [o for o in outcomes if o.triggered]
    candidates = []
    for outcome in triggering:
        kinds, cells = outcome_signature(outcome)
        candidates.append(
            _Candidate(
                key=signature_key(kinds, cells),
                source=outcome.program.source,
                inputs=tuple(outcome.program.inputs),
                label=label,
                index=outcome.index,
            )
        )
    return candidates, len(outcomes), len(triggering)


class TriggerCorpus:
    """The append-only signature corpus behind ``llm4fp corpus``.

    Open-for-append with :meth:`open` (creates the file, truncates a
    crash tail, replays every record into memory) or read-only with
    :meth:`load` (missing file reads as an empty corpus).  All mutation
    goes through :meth:`ingest`; :meth:`diff` never writes.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.entries: dict[str, CorpusEntry] = {}
        self.ingests = 0
        self._file = None
        # provenance of the ingest record currently being replayed, so
        # `sig` records know their first/last-seen context
        self._ingest_meta: dict = {}

    # -- lifecycle -------------------------------------------------------------

    def open(self) -> "TriggerCorpus":
        """Open for append, creating the file when missing."""
        if self._file is not None:
            return self
        if self.path.exists() and self.path.stat().st_size > 0:
            records, good, total = self._read_complete_lines()
            self._validate_header(records)
            for record in records[1:]:
                self._apply(record)
            if good < total:
                # crash tail: drop the partial record, keep the prefix
                with self.path.open("r+b") as f:
                    f.truncate(good)
            self._file = self.path.open("a", encoding="utf-8")
        else:
            self._file = self.path.open("w", encoding="utf-8")
            self._write_line({"kind": "corpus", "version": _FORMAT_VERSION})
        return self

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TriggerCorpus":
        """Read-only snapshot; a missing path is an empty corpus."""
        corpus = cls(path)
        if corpus.path.exists() and corpus.path.stat().st_size > 0:
            records, _good, _total = corpus._read_complete_lines()
            corpus._validate_header(records)
            for record in records[1:]:
                corpus._apply(record)
        return corpus

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TriggerCorpus":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def sorted_entries(self) -> list[CorpusEntry]:
        return [self.entries[k] for k in sorted(self.entries)]

    def seeds(self) -> list[RegressionSeed]:
        """Regression seeds in deterministic (sorted-key) replay order."""
        return [entry.seed for entry in self.sorted_entries()]

    def diff(self, source, label: str = "") -> DiffReport:
        """Partition a checkpoint's signatures into never-seen vs known.

        Read-only: the corpus file is not touched, so ``diff`` is safe
        to run from CI against a committed fixture corpus.
        """
        candidates, programs, triggers = _candidates_of(source, label)
        counts: dict[str, int] = {}
        for c in candidates:
            counts[c.key] = counts.get(c.key, 0) + c.weight
        new = tuple(sorted(k for k in counts if k not in self.entries))
        known = tuple(sorted(k for k in counts if k in self.entries))
        return DiffReport(
            programs=programs,
            triggers=triggers,
            new_keys=new,
            known_keys=known,
            counts=counts,
        )

    # -- mutation --------------------------------------------------------------

    def ingest(
        self,
        source,
        label: str = "",
        *,
        model: str | None = None,
        timestamp: str = "",
    ) -> IngestReport:
        """Fold a campaign result / triage report / outcome iterable in.

        Appends one ``ingest`` record plus one ``sig`` record per
        distinct signature (sorted by key), fsync'd line by line.  A
        signature's regression seed is written only when new or when a
        strictly smaller trigger arrived, keeping repeat ingests of the
        same checkpoint byte-deterministic and seed-stable.
        """
        if self._file is None:
            raise CorpusError(f"corpus {self.path} is not open for ingest")
        fingerprint = model_fingerprint() if model is None else model
        candidates, programs, triggers = _candidates_of(source, label)
        best: dict[str, _Candidate] = {}
        weights: dict[str, int] = {}
        for c in candidates:
            weights[c.key] = weights.get(c.key, 0) + c.weight
            held = best.get(c.key)
            if held is None or _seed_rank(c.source) < _seed_rank(held.source):
                best[c.key] = c
        new_keys, known_keys, improved_keys = [], [], []
        sig_records = []
        for key in sorted(best):
            candidate = best[key]
            entry = self.entries.get(key)
            record = {
                "kind": "sig",
                "ingest": self.ingests + 1,
                "key": key,
                "count": weights[key],
            }
            if entry is None:
                new_keys.append(key)
                wants_seed = True
            else:
                known_keys.append(key)
                wants_seed = _seed_rank(candidate.source) < _seed_rank(
                    entry.seed_source
                )
                if wants_seed:
                    improved_keys.append(key)
            if wants_seed:
                record["seed"] = {
                    "source": candidate.source,
                    "inputs": [_enc_input(v) for v in candidate.inputs],
                    "label": candidate.label,
                    "index": candidate.index,
                }
            sig_records.append(record)
        ingest_record = {
            "kind": "ingest",
            "id": self.ingests + 1,
            "label": label,
            "model": fingerprint,
            "timestamp": timestamp,
            "programs": programs,
            "triggers": triggers,
            "distinct": len(sig_records),
            "new": len(new_keys),
        }
        # Durability order matters: the ingest record lands before its
        # sig records so a crash mid-ingest leaves a replayable prefix.
        for record in [ingest_record, *sig_records]:
            self._write_line(record)
            self._apply(record)
        return IngestReport(
            ingest_id=self.ingests,
            label=label,
            model=fingerprint,
            timestamp=timestamp,
            programs=programs,
            triggers=triggers,
            new_keys=tuple(new_keys),
            known_keys=tuple(known_keys),
            improved_keys=tuple(improved_keys),
        )

    # -- record replay ---------------------------------------------------------

    def _apply(self, record: dict) -> None:
        """Fold one record into memory — the single code path shared by
        file replay and live ingest, so state after a reload is exactly
        the state after the writes."""
        kind = record.get("kind")
        if kind == "ingest":
            self.ingests = int(record["id"])
            self._ingest_meta = {
                "ingest": int(record["id"]),
                "label": record.get("label", ""),
                "model": record.get("model", ""),
                "timestamp": record.get("timestamp", ""),
            }
        elif kind == "sig":
            key = record["key"]
            meta = self._ingest_meta
            entry = self.entries.get(key)
            if entry is None:
                entry = CorpusEntry(
                    key=key,
                    first_ingest=meta.get("ingest", 0),
                    first_label=meta.get("label", ""),
                    first_timestamp=meta.get("timestamp", ""),
                    first_model=meta.get("model", ""),
                )
                self.entries[key] = entry
            entry.count += int(record.get("count", 1))
            entry.last_ingest = meta.get("ingest", entry.first_ingest)
            entry.last_label = meta.get("label", "")
            entry.last_timestamp = meta.get("timestamp", "")
            entry.last_model = meta.get("model", "")
            seed = record.get("seed")
            if seed is not None:
                entry.seed_source = seed["source"]
                entry.seed_inputs = tuple(_dec_input(v) for v in seed["inputs"])
                entry.seed_origin_label = seed.get("label", "")
                entry.seed_origin_index = int(seed.get("index", -1))
        else:
            raise CorpusError(
                f"corpus {self.path} contains an unknown record kind "
                f"{kind!r} — written by a newer version?"
            )

    # -- file plumbing ---------------------------------------------------------

    def _validate_header(self, records: list[dict]) -> None:
        if not records:
            raise CorpusError(
                f"{self.path} exists but is not a trigger corpus (no "
                "decodable header line); refusing to touch it — delete "
                "it or pass a different path"
            )
        header = records[0]
        if header.get("kind") != "corpus":
            raise CorpusError(
                f"{self.path} is not a trigger corpus (header {header!r}); "
                "refusing to touch it"
            )
        version = header.get("version")
        if version not in _READABLE_VERSIONS:
            raise CorpusError(
                f"unsupported corpus version {version!r} in {self.path} "
                f"(this build reads {sorted(_READABLE_VERSIONS)})"
            )

    def _read_complete_lines(self) -> tuple[list[dict], int, int]:
        """All decodable leading records + the byte offset they end at.

        Stops at the first partial or undecodable line (a record
        half-written when the process died); callers truncate there.
        """
        records: list[dict] = []
        good = 0
        data = self.path.read_bytes()
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # partial final line
            try:
                record = json.loads(raw)
            except ValueError:
                break
            if not isinstance(record, dict):
                break
            records.append(record)
            good += len(raw)
        return records, good, len(data)

    def _write_line(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._file.write(line)
        self._file.flush()
        os.fsync(self._file.fileno())
