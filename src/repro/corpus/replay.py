"""Directed re-fuzzing: replay corpus regression seeds before fuzzing.

:class:`CorpusReplayGenerator` wraps any configured approach with a
regression prelude — the corpus's stored seeds, in sorted-signature-key
order, each re-issued as a :class:`~repro.generation.program.
GeneratedProgram` with bit-identical inputs — and hands the stream to
the inner generator once the seeds run out.  Every campaign that points
at a corpus therefore opens with a sweep over every root cause the
fleet has ever recorded, under whatever compiler model is current.

The wrapper implements the full generator lifecycle protocol (PR-8's
``bind`` / ``generate`` / ``observe`` / ``export_state``), so it works
everywhere a bare approach does: classic sharding replays the identical
seed stream on every shard (the engine's ``owns()`` filter keeps the
work disjoint), while an island ``bind(k, n)`` partitions the seed list
itself — shard *k* replays seeds ``k, k+n, k+2n, …`` — before binding
the inner generator to its island stream.  Capabilities mirror the
inner generator: wrapping a feedback approach keeps the feedback
contract (and its island-only sharding rule) intact.
"""

from __future__ import annotations

from typing import Iterable

from repro.corpus.store import RegressionSeed
from repro.generation.program import (
    GeneratedProgram,
    GeneratorCapabilities,
    bind_generator,
    generator_capabilities,
    observe_outcome,
)

__all__ = ["CorpusReplayGenerator"]


class CorpusReplayGenerator:
    """Replay stored regression seeds first, then delegate.

    ``seeds`` is typically :meth:`repro.corpus.store.TriggerCorpus.
    seeds` — already deterministically ordered; the wrapper preserves
    whatever order it is given.  ``inner`` is any lifecycle (or legacy
    ``notify_success``-only) generator.
    """

    def __init__(self, seeds: Iterable[RegressionSeed], inner) -> None:
        self._all_seeds: list[RegressionSeed] = list(seeds)
        self._seeds: list[RegressionSeed] = list(self._all_seeds)
        self._inner = inner
        self._position = 0
        inner_caps = generator_capabilities(inner)
        inner_name = getattr(inner, "name", type(inner).__name__)
        self.name = f"corpus-replay+{inner_name}"
        self.capabilities = GeneratorCapabilities(
            feedback=inner_caps.feedback, shardable=inner_caps.shardable
        )

    # -- lifecycle -------------------------------------------------------------

    def bind(self, shard_index: int, shard_count: int, rng_seed: int) -> None:
        """Partition the seed list and bind the inner generator.

        The 0/1 bind is the identity (whole seed stream); a k/n bind
        with n > 1 keeps seeds ``k, k+n, k+2n, …`` — pairwise-disjoint
        and jointly exhaustive across the n partitions.
        """
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValueError(
                f"invalid partition {shard_index}/{shard_count}: need "
                f"0 <= shard_index < shard_count"
            )
        if shard_count == 1:
            self._seeds = list(self._all_seeds)
        else:
            self._seeds = [
                seed
                for i, seed in enumerate(self._all_seeds)
                if i % shard_count == shard_index
            ]
        self._position = 0
        bind_generator(self._inner, shard_index, shard_count, rng_seed)

    def generate(self) -> GeneratedProgram:
        if self._position < len(self._seeds):
            seed = self._seeds[self._position]
            self._position += 1
            return GeneratedProgram(
                source=seed.source,
                inputs=tuple(seed.inputs),
                meta={
                    "strategy": "corpus-replay",
                    "corpus_key": seed.key,
                    "origin": f"{seed.origin_label}#{seed.origin_index}",
                },
            )
        return self._inner.generate()

    def observe(self, outcome) -> None:
        # Seed outcomes feed the inner approach too: a feedback
        # generator starts its mutation loop from the regression sweep's
        # verdicts instead of cold.
        observe_outcome(self._inner, outcome)

    def export_state(self) -> dict:
        inner_state = (
            self._inner.export_state()
            if hasattr(self._inner, "export_state")
            else {}
        )
        return {"position": self._position, "inner": inner_state}

    def import_state(self, state: dict) -> None:
        self._position = int(state["position"])
        if hasattr(self._inner, "import_state"):
            self._inner.import_state(state.get("inner", {}))

    # -- passthrough -----------------------------------------------------------

    @property
    def seeds_remaining(self) -> int:
        return max(0, len(self._seeds) - self._position)

    def __getattr__(self, name: str):
        # Everything the wrapper doesn't define (island migrant hooks,
        # the simulated LLM handle, legacy notify_success) belongs to
        # the inner generator.  Underscore names are never forwarded —
        # that keeps deepcopy/pickle protocol probes on the default path
        # and makes a missing private attribute an honest AttributeError.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)
