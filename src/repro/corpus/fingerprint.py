"""Compiler-model version fingerprint for corpus provenance.

A corpus outlives any single campaign, so every ingest records *which*
simulated toolchain produced the triggers: a short content hash over
each compiler's identity (name, version) and its full per-level
behaviour surface — the optimization pipeline's cache token and the
observable FP environment — across the whole level matrix.  Two corpora
ingested under byte-identical compiler models record identical
fingerprints; bumping a compiler version, reordering a pipeline, or
flipping an FP-environment flag changes the fingerprint, which is how a
`corpus list` reader tells "this signature last reproduced under the
current model" from "this is a fossil of an older toolchain".
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.toolchains import ALL_LEVELS, default_compilers, env_fingerprint
from repro.toolchains.base import Compiler
from repro.toolchains.optlevels import OptLevel

__all__ = ["model_fingerprint"]

#: hex digits kept from the sha256 digest — plenty to never collide
#: across the handful of compiler models a corpus will ever see, short
#: enough to read in a report line.
_FINGERPRINT_HEX_DIGITS = 16


def model_fingerprint(
    compilers: Iterable[Compiler] | None = None,
    levels: Sequence[OptLevel] | None = None,
) -> str:
    """Content hash of the compiler model the corpus is recording.

    Deterministic in the *content* of the toolchain, not its object
    identity or ordering: compilers are hashed sorted by name, and each
    contributes its name, version, and per-level ``cache_token`` +
    ``env_fingerprint`` (everything compilation and execution observe).
    """
    chosen = list(default_compilers()) if compilers is None else list(compilers)
    matrix = tuple(ALL_LEVELS) if levels is None else tuple(levels)
    digest = hashlib.sha256()
    for compiler in sorted(chosen, key=lambda c: c.name):
        digest.update(f"{compiler.name}\x00{compiler.version}\x1e".encode())
        for level in matrix:
            env = env_fingerprint(compiler.environment(level))
            digest.update(
                f"{level}\x00{compiler.cache_token(level)}\x00{env!r}\x1e".encode()
            )
    return digest.hexdigest()[:_FINGERPRINT_HEX_DIGITS]
