"""Pretty-printers: AST back to C source, and the C→CUDA translation.

The CUDA translation follows the paper (§2.4): the ``compute`` function
becomes a ``__global__`` kernel launched from ``main`` with a single block
and a single thread; everything else is untouched.
"""

from __future__ import annotations

from repro.frontend import ast
from repro.frontend.ctypes import CType

__all__ = ["print_c", "print_cuda", "expr_to_c"]

_PREC = {
    "?:": 1,
    "||": 2,
    "&&": 3,
    "==": 4,
    "!=": 4,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
}
_UNARY_PREC = 8
_POSTFIX_PREC = 9
_ATOM_PREC = 10


def _float_text(lit: ast.FloatLit) -> str:
    if lit.text:
        return lit.text
    s = repr(lit.value)
    if "e" not in s and "." not in s and "inf" not in s and "nan" not in s:
        s += ".0"
    return s + ("f" if lit.is_single else "")


def _expr(e: ast.Expr) -> tuple[str, int]:
    """Render an expression, returning (text, precedence-of-root)."""
    if isinstance(e, ast.IntLit):
        return (e.text or str(e.value)), _ATOM_PREC
    if isinstance(e, ast.FloatLit):
        return _float_text(e), _ATOM_PREC
    if isinstance(e, ast.StrLit):
        return f'"{e.value}"', _ATOM_PREC
    if isinstance(e, ast.Ident):
        return e.name, _ATOM_PREC
    if isinstance(e, ast.Unary):
        inner, prec = _expr(e.operand)
        if prec < _UNARY_PREC:
            inner = f"({inner})"
        return f"{e.op}{inner}", _UNARY_PREC
    if isinstance(e, ast.Binary):
        prec = _PREC[e.op]
        lt, lp = _expr(e.left)
        rt, rp = _expr(e.right)
        if lp < prec:
            lt = f"({lt})"
        # Right operand needs parens at equal precedence (left-assoc ops);
        # keeping them also preserves the tree through a reparse, which the
        # differential pipeline relies on (association *is* the experiment).
        if rp <= prec:
            rt = f"({rt})"
        return f"{lt} {e.op} {rt}", prec
    if isinstance(e, ast.Ternary):
        ct, cp = _expr(e.cond)
        tt, _ = _expr(e.then)
        ot, op_ = _expr(e.other)
        if cp <= _PREC["?:"]:
            ct = f"({ct})"
        if op_ < _PREC["?:"]:
            ot = f"({ot})"
        return f"{ct} ? {tt} : {ot}", _PREC["?:"]
    if isinstance(e, ast.Call):
        args = ", ".join(_expr(a)[0] for a in e.args)
        return f"{e.name}({args})", _POSTFIX_PREC
    if isinstance(e, ast.Index):
        bt, bp = _expr(e.base)
        if bp < _POSTFIX_PREC:
            bt = f"({bt})"
        return f"{bt}[{_expr(e.index)[0]}]", _POSTFIX_PREC
    if isinstance(e, ast.Cast):
        inner, prec = _expr(e.operand)
        if prec < _UNARY_PREC:
            inner = f"({inner})"
        return f"({e.type}){inner}", _UNARY_PREC
    raise TypeError(f"cannot print expression {type(e).__name__}")


def expr_to_c(e: ast.Expr) -> str:
    """Render a single expression as C text."""
    return _expr(e)[0]


def _type_and_name(base: CType, d: ast.Declarator) -> str:
    stars = "*" * base.pointers
    if d.array_size is not None:
        return f"{base.base} {stars}{d.name}[{d.array_size}]"
    return f"{base.base} {stars}{d.name}"


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Decl):
            parts = []
            for d in s.declarators:
                txt = _type_and_name(s.base, d) if not parts else (
                    _strip_type(_type_and_name(s.base, d))
                )
                if d.init is not None:
                    txt += f" = {expr_to_c(d.init)}"
                if d.array_init is not None:
                    txt += " = {" + ", ".join(expr_to_c(e) for e in d.array_init) + "}"
                parts.append(txt)
            self.emit(", ".join(parts) + ";")
        elif isinstance(s, ast.Assign):
            self.emit(f"{expr_to_c(s.target)} {s.op} {expr_to_c(s.value)};")
        elif isinstance(s, ast.IncDec):
            self.emit(f"{expr_to_c(s.target)}{s.op};")
        elif isinstance(s, ast.ExprStmt):
            self.emit(f"{expr_to_c(s.expr)};")
        elif isinstance(s, ast.Block):
            self.emit("{")
            self.depth += 1
            for inner in s.stmts:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.If):
            self.emit(f"if ({expr_to_c(s.cond)}) {{")
            self.depth += 1
            for inner in s.then.stmts:
                self.stmt(inner)
            self.depth -= 1
            if s.other is not None:
                self.emit("} else {")
                self.depth += 1
                for inner in s.other.stmts:
                    self.stmt(inner)
                self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.For):
            init = self._inline_stmt(s.init) if s.init is not None else ""
            cond = expr_to_c(s.cond) if s.cond is not None else ""
            step = self._inline_stmt(s.step) if s.step is not None else ""
            self.emit(f"for ({init}; {cond}; {step}) {{")
            self.depth += 1
            for inner in s.body.stmts:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.While):
            self.emit(f"while ({expr_to_c(s.cond)}) {{")
            self.depth += 1
            for inner in s.body.stmts:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.Return):
            if s.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {expr_to_c(s.value)};")
        else:  # pragma: no cover
            raise TypeError(f"cannot print statement {type(s).__name__}")

    def _inline_stmt(self, s: ast.Stmt) -> str:
        if isinstance(s, ast.Decl):
            d = s.declarators[0]
            txt = _type_and_name(s.base, d)
            if d.init is not None:
                txt += f" = {expr_to_c(d.init)}"
            return txt
        if isinstance(s, ast.Assign):
            return f"{expr_to_c(s.target)} {s.op} {expr_to_c(s.value)}"
        if isinstance(s, ast.IncDec):
            return f"{expr_to_c(s.target)}{s.op}"
        raise TypeError(f"cannot inline statement {type(s).__name__}")


def _strip_type(decl_text: str) -> str:
    """Drop the leading base type from a declarator rendering (2nd+ item)."""
    return decl_text.split(" ", 1)[1]


def _signature(fn: ast.FunctionDef, qualifier: str = "") -> str:
    params = ", ".join(
        f"{p.type.base} {'*' * p.type.pointers}{p.name}" for p in fn.params
    )
    q = qualifier or fn.qualifier or ""
    if q:
        q += " "
    return f"{q}{fn.return_type} {fn.name}({params}) {{"


def print_c(unit: ast.TranslationUnit) -> str:
    """Render a translation unit as compilable C."""
    w = _Writer()
    for h in unit.includes:
        w.emit(f"#include <{h}>")
    for fn in unit.functions:
        w.emit("")
        w.emit(_signature(fn))
        w.depth += 1
        for s in fn.body.stmts:
            w.stmt(s)
        w.depth -= 1
        w.emit("}")
    return "\n".join(w.lines) + "\n"


def print_cuda(unit: ast.TranslationUnit) -> str:
    """Render the CUDA translation of a host program (§2.4).

    ``compute`` becomes ``__global__ void`` and the call site in ``main``
    becomes a single-block single-thread kernel launch followed by a device
    synchronize.
    """
    w = _Writer()
    for h in unit.includes:
        w.emit(f"#include <{h}>")
    for fn in unit.functions:
        w.emit("")
        if fn.name == "compute":
            w.emit(_signature(fn, qualifier="__global__"))
        else:
            w.emit(_signature(fn))
        w.depth += 1
        for s in fn.body.stmts:
            if fn.name == "main":
                s = _rewrite_launch(s)
            w.stmt(s)
        w.depth -= 1
        w.emit("}")
    return "\n".join(w.lines) + "\n"


def _rewrite_launch(s: ast.Stmt) -> ast.Stmt:
    if isinstance(s, ast.ExprStmt) and isinstance(s.expr, ast.Call) and s.expr.name == "compute":
        # Render as a launch by textual substitution through a fake name.
        return ast.ExprStmt(ast.Call("compute<<<1,1>>>", s.expr.args))
    return s
