"""Recursive-descent parser for the C subset.

Grammar follows C's expression precedence; statements cover the Fig. 2
grammar plus while loops, ternaries, casts and compound assignment, which
LLM-style generation produces in practice.  ``main`` is parsed with the
same machinery; the CUDA launch syntax ``compute<<<1,1>>>(...)`` is also
accepted so translated programs can round-trip through the frontend.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.ctypes import CType
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

__all__ = ["Parser", "parse_program"]


class Parser:
    def __init__(self, source: str) -> None:
        lexed = tokenize(source)
        self._tokens = lexed.tokens
        self._includes = tuple(lexed.includes)
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[i]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        where = tok.text or "<eof>"
        return ParseError(f"{message} (found {where!r})", tok.line, tok.column)

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise self._error(f"expected {text!r}")
        return self._next()

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        self._next()
        return tok.text

    # -- types ------------------------------------------------------------------

    def _at_type(self) -> bool:
        tok = self._peek()
        if tok.is_keyword("const"):
            tok = self._peek(1)
        return tok.kind is TokenKind.KEYWORD and tok.text in (
            "int",
            "float",
            "double",
            "char",
            "void",
        )

    def _parse_base_type(self) -> CType:
        if self._peek().is_keyword("const"):
            self._next()
        tok = self._peek()
        if not self._at_type() and not (
            tok.kind is TokenKind.KEYWORD and tok.text in ("int", "float", "double", "char", "void")
        ):
            raise self._error("expected type name")
        base = self._next().text
        pointers = 0
        while self._accept_punct("*"):
            pointers += 1
        return CType(base, pointers)

    # -- top level -----------------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        functions: list[ast.FunctionDef] = []
        while self._peek().kind is not TokenKind.EOF:
            functions.append(self._parse_function())
        if not functions:
            raise ParseError("empty translation unit")
        return ast.TranslationUnit(self._includes, tuple(functions))

    _CUDA_QUALIFIERS = ("__global__", "__device__", "__host__")

    def _parse_function(self) -> ast.FunctionDef:
        qualifier = None
        tok = self._peek()
        if tok.kind is TokenKind.IDENT and tok.text in self._CUDA_QUALIFIERS:
            qualifier = self._next().text
        rtype = self._parse_base_type()
        name = self._expect_ident()
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._peek().is_punct(")"):
            while True:
                ptype = self._parse_base_type()
                if ptype.base == "void" and ptype.pointers == 0 and self._peek().is_punct(")"):
                    break  # f(void)
                pname = self._expect_ident()
                if self._accept_punct("["):
                    # `double a[]` parameter decays to a pointer.
                    self._expect_punct("]")
                    ptype = CType(ptype.base, ptype.pointers + 1)
                params.append(ast.Param(ptype, pname))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FunctionDef(rtype, name, tuple(params), body, qualifier)

    # -- statements ---------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        self._expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unterminated block")
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(tuple(stmts))

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value)
        if self._at_type():
            decl = self._parse_declaration()
            self._expect_punct(";")
            return decl
        stmt = self._parse_simple_statement()
        self._expect_punct(";")
        return stmt

    def _parse_declaration(self) -> ast.Decl:
        base = self._parse_base_type()
        declarators: list[ast.Declarator] = []
        while True:
            # Each declarator may add its own pointer depth in C; the
            # generators never do, so we keep the base's depth.
            name = self._expect_ident()
            size: int | None = None
            init: ast.Expr | None = None
            array_init: tuple[ast.Expr, ...] | None = None
            if self._accept_punct("["):
                size_tok = self._peek()
                if size_tok.kind is not TokenKind.INT_LIT:
                    raise self._error("array size must be an integer literal")
                self._next()
                size = int(size_tok.text)
                self._expect_punct("]")
            if self._accept_punct("="):
                if self._peek().is_punct("{"):
                    self._next()
                    elems: list[ast.Expr] = []
                    if not self._peek().is_punct("}"):
                        while True:
                            elems.append(self._parse_assignment_value())
                            if not self._accept_punct(","):
                                break
                    self._expect_punct("}")
                    array_init = tuple(elems)
                else:
                    init = self._parse_assignment_value()
            declarators.append(ast.Declarator(name, size, init, array_init))
            if not self._accept_punct(","):
                break
        return ast.Decl(base, tuple(declarators))

    def _parse_simple_statement(self) -> ast.Stmt:
        """Assignment, inc/dec, or expression statement."""
        expr = self._parse_expression()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("=", "+=", "-=", "*=", "/="):
            if not isinstance(expr, (ast.Ident, ast.Index)):
                raise self._error("assignment target must be a variable or element")
            op = self._next().text
            value = self._parse_expression()
            return ast.Assign(expr, op, value)
        if tok.kind is TokenKind.PUNCT and tok.text in ("++", "--"):
            if not isinstance(expr, (ast.Ident, ast.Index)):
                raise self._error("++/-- target must be a variable or element")
            op = self._next().text
            return ast.IncDec(expr, op)
        return ast.ExprStmt(expr)

    def _parse_if(self) -> ast.If:
        self._next()  # 'if'
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement_as_block()
        other = None
        if self._peek().is_keyword("else"):
            self._next()
            other = self._parse_statement_as_block()
        return ast.If(cond, then, other)

    def _parse_statement_as_block(self) -> ast.Block:
        stmt = self._parse_statement()
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block((stmt,))

    def _parse_for(self) -> ast.For:
        self._next()  # 'for'
        self._expect_punct("(")
        init: ast.Decl | ast.Assign | None = None
        if not self._peek().is_punct(";"):
            if self._at_type():
                init = self._parse_declaration()
            else:
                stmt = self._parse_simple_statement()
                if not isinstance(stmt, ast.Assign):
                    raise self._error("for-init must be a declaration or assignment")
                init = stmt
        self._expect_punct(";")
        cond = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step: ast.Assign | ast.IncDec | None = None
        if not self._peek().is_punct(")"):
            # '++i' prefix form
            if self._peek().kind is TokenKind.PUNCT and self._peek().text in ("++", "--"):
                op = self._next().text
                target = self._parse_unary()
                if not isinstance(target, (ast.Ident, ast.Index)):
                    raise self._error("++/-- target must be a variable")
                step = ast.IncDec(target, op)
            else:
                stmt = self._parse_simple_statement()
                if not isinstance(stmt, (ast.Assign, ast.IncDec)):
                    raise self._error("for-step must be an assignment or ++/--")
                step = stmt
        self._expect_punct(")")
        body = self._parse_statement_as_block()
        return ast.For(init, cond, step, body)

    def _parse_while(self) -> ast.While:
        self._next()  # 'while'
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement_as_block()
        return ast.While(cond, body)

    # -- expressions (precedence climbing) ------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_assignment_value(self) -> ast.Expr:
        """Expression context where a top-level comma would be a separator."""
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_logical_or()
        if self._accept_punct("?"):
            then = self._parse_expression()
            self._expect_punct(":")
            other = self._parse_ternary()
            return ast.Ternary(cond, then, other)
        return cond

    def _parse_logical_or(self) -> ast.Expr:
        left = self._parse_logical_and()
        while self._peek().is_punct("||"):
            self._next()
            left = ast.Binary("||", left, self._parse_logical_and())
        return left

    def _parse_logical_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._peek().is_punct("&&"):
            self._next()
            left = ast.Binary("&&", left, self._parse_equality())
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in ("==", "!="):
            op = self._next().text
            left = ast.Binary(op, left, self._parse_relational())
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in (
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = self._next().text
            left = ast.Binary(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in ("+", "-"):
            op = self._next().text
            left = ast.Binary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in ("*", "/", "%"):
            op = self._next().text
            left = ast.Binary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "+", "!"):
            self._next()
            return ast.Unary(tok.text, self._parse_unary())
        # cast: '(' type ')' unary
        if tok.is_punct("(") and self._peek(1).kind is TokenKind.KEYWORD and self._peek(
            1
        ).text in ("int", "float", "double"):
            self._next()
            ctype = self._parse_base_type()
            self._expect_punct(")")
            return ast.Cast(ctype, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._accept_punct("["):
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._next()
            return ast.IntLit(int(tok.text), tok.text)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._next()
            text = tok.text
            is_single = text.endswith(("f", "F"))
            return ast.FloatLit(float(text.rstrip("fF")), text, is_single)
        if tok.kind is TokenKind.STRING_LIT:
            self._next()
            return ast.StrLit(tok.text)
        if tok.kind is TokenKind.IDENT:
            name = self._next().text
            # CUDA launch: compute<<<1,1>>>(args)
            if self._peek().is_punct("<<<"):
                self._next()
                self._parse_expression()
                self._expect_punct(",")
                self._parse_expression()
                self._expect_punct(">>>")
                self._expect_punct("(")
                args = self._parse_call_args()
                return ast.Call(name, args)
            if self._accept_punct("("):
                args = self._parse_call_args()
                return ast.Call(name, args)
            return ast.Ident(name)
        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise self._error("expected expression")

    def _parse_call_args(self) -> tuple[ast.Expr, ...]:
        args: list[ast.Expr] = []
        if not self._peek().is_punct(")"):
            while True:
                args.append(self._parse_assignment_value())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return tuple(args)


def parse_program(source: str) -> ast.TranslationUnit:
    """Parse C source into a translation unit (includes + functions)."""
    return Parser(source).parse()
