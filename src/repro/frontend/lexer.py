"""Lexer for the C subset.

Preprocessor lines are not expanded: ``#include <...>`` directives are
collected (the sema stage enforces the paper's header allow-list) and any
other directive is rejected — the generators never need macros, and
rejecting them keeps candidate programs analysable.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.frontend.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

__all__ = ["Lexer", "tokenize", "LexResult"]


class LexResult:
    """Token stream plus the ``#include`` headers seen."""

    def __init__(self, tokens: list[Token], includes: list[str]) -> None:
        self.tokens = tokens
        self.includes = includes


class Lexer:
    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1
        self.includes: list[str] = []

    # -- low-level cursor ----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self._pos + offset
        return self._src[i] if i < len(self._src) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self._pos < len(self._src):
                if self._src[self._pos] == "\n":
                    self._line += 1
                    self._col = 1
                else:
                    self._col += 1
                self._pos += 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self._line, self._col)

    # -- skipping -------------------------------------------------------------

    def _skip_trivia(self) -> None:
        while True:
            c = self._peek()
            if not c:
                return
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise self._error("unterminated block comment")
                    self._advance()
                self._advance(2)
            elif c == "#" and self._col == 1:
                self._directive()
            else:
                return

    def _directive(self) -> None:
        start_line = self._line
        text = []
        while self._peek() and self._peek() != "\n":
            text.append(self._peek())
            self._advance()
        line = "".join(text).strip()
        if line.startswith("#include"):
            rest = line[len("#include"):].strip()
            if (rest.startswith("<") and rest.endswith(">")) or (
                rest.startswith('"') and rest.endswith('"')
            ):
                self.includes.append(rest[1:-1].strip())
                return
            raise LexError(f"malformed include: {line!r}", start_line, 1)
        raise LexError(f"unsupported preprocessor directive: {line!r}", start_line, 1)

    # -- token scanners ---------------------------------------------------------

    def _ident(self) -> Token:
        line, col = self._line, self._col
        chars = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._peek())
            self._advance()
        text = "".join(chars)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _number(self) -> Token:
        line, col = self._line, self._col
        chars = []
        is_float = False
        # integer part
        while self._peek().isdigit():
            chars.append(self._peek())
            self._advance()
        if self._peek() == ".":
            is_float = True
            chars.append(".")
            self._advance()
            while self._peek().isdigit():
                chars.append(self._peek())
                self._advance()
        if self._peek() in "eE":
            nxt = self._peek(1)
            nxt2 = self._peek(2)
            if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                is_float = True
                chars.append(self._peek())
                self._advance()
                if self._peek() in "+-":
                    chars.append(self._peek())
                    self._advance()
                while self._peek().isdigit():
                    chars.append(self._peek())
                    self._advance()
        # suffixes: f/F (float), u/l ignored for ints
        if self._peek() in "fF" and is_float:
            chars.append(self._peek())
            self._advance()
        text = "".join(chars)
        if not text or text == ".":
            raise self._error("malformed numeric literal")
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, line, col)

    def _string(self) -> Token:
        line, col = self._line, self._col
        self._advance()  # opening quote
        chars = []
        while True:
            c = self._peek()
            if not c or c == "\n":
                raise self._error("unterminated string literal")
            if c == '"':
                self._advance()
                break
            if c == "\\":
                chars.append(c)
                self._advance()
                chars.append(self._peek())
                self._advance()
                continue
            chars.append(c)
            self._advance()
        return Token(TokenKind.STRING_LIT, "".join(chars), line, col)

    def _punct(self) -> Token:
        line, col = self._line, self._col
        for p in PUNCTUATORS:
            if self._src.startswith(p, self._pos):
                self._advance(len(p))
                return Token(TokenKind.PUNCT, p, line, col)
        raise self._error(f"unexpected character {self._peek()!r}")

    # -- driver --------------------------------------------------------------------

    def run(self) -> LexResult:
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            c = self._peek()
            if not c:
                tokens.append(Token(TokenKind.EOF, "", self._line, self._col))
                return LexResult(tokens, self.includes)
            if c.isalpha() or c == "_":
                tokens.append(self._ident())
            elif c.isdigit() or (c == "." and self._peek(1).isdigit()):
                tokens.append(self._number())
            elif c == '"':
                tokens.append(self._string())
            else:
                tokens.append(self._punct())


def tokenize(source: str) -> LexResult:
    """Tokenize C source, returning tokens and collected includes."""
    return Lexer(source).run()
