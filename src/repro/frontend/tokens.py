"""Token definitions for the C-subset lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    IDENT = enum.auto()
    INT_LIT = enum.auto()
    FLOAT_LIT = enum.auto()
    STRING_LIT = enum.auto()
    KEYWORD = enum.auto()
    PUNCT = enum.auto()
    EOF = enum.auto()


#: C keywords the subset recognises (others lex as identifiers and are
#: rejected later, which gives better error messages than a lex failure).
KEYWORDS = frozenset(
    {
        "int",
        "float",
        "double",
        "char",
        "void",
        "if",
        "else",
        "for",
        "while",
        "return",
        "const",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = (
    "<<<",
    ">>>",
    "+=",
    "-=",
    "*=",
    "/=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "?",
    ":",
    "&",
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
