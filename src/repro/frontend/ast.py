"""Abstract syntax tree for the C subset.

Nodes are frozen dataclasses; expression types are filled in by the
semantic checker (stored out-of-band in :class:`~repro.frontend.sema.TypeMap`
so the AST stays immutable and shareable between pipelines).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Union

from repro.frontend.ctypes import CType

# --------------------------------------------------------------------------- expressions


@dataclass(frozen=True, slots=True)
class IntLit:
    value: int
    text: str = ""


@dataclass(frozen=True, slots=True)
class FloatLit:
    value: float
    text: str = ""
    is_single: bool = False  # had an 'f' suffix


@dataclass(frozen=True, slots=True)
class StrLit:
    value: str


@dataclass(frozen=True, slots=True)
class Ident:
    name: str


@dataclass(frozen=True, slots=True)
class Unary:
    op: str  # '-', '!', '+'
    operand: "Expr"


@dataclass(frozen=True, slots=True)
class Binary:
    op: str  # + - * / % == != < <= > >= && ||
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Ternary:
    cond: "Expr"
    then: "Expr"
    other: "Expr"


@dataclass(frozen=True, slots=True)
class Call:
    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True, slots=True)
class Index:
    base: "Expr"
    index: "Expr"


@dataclass(frozen=True, slots=True)
class Cast:
    type: CType
    operand: "Expr"


Expr = Union[IntLit, FloatLit, StrLit, Ident, Unary, Binary, Ternary, Call, Index, Cast]

# --------------------------------------------------------------------------- statements


@dataclass(frozen=True, slots=True)
class Declarator:
    """One declarator in a declaration: name, optional size, optional init."""

    name: str
    array_size: int | None = None
    init: Expr | None = None
    array_init: tuple[Expr, ...] | None = None


@dataclass(frozen=True, slots=True)
class Decl:
    base: CType  # scalar base type of the declaration (no array part)
    declarators: tuple[Declarator, ...]


@dataclass(frozen=True, slots=True)
class Assign:
    """``target op value`` where op is one of = += -= *= /=."""

    target: Expr  # Ident or Index
    op: str
    value: Expr


@dataclass(frozen=True, slots=True)
class IncDec:
    """``x++`` / ``x--`` as a statement (also appears in for-steps)."""

    target: Expr
    op: str  # '++' or '--'


@dataclass(frozen=True, slots=True)
class ExprStmt:
    expr: Expr


@dataclass(frozen=True, slots=True)
class Block:
    stmts: tuple["Stmt", ...]


@dataclass(frozen=True, slots=True)
class If:
    cond: Expr
    then: Block
    other: Block | None = None


@dataclass(frozen=True, slots=True)
class For:
    init: Union["Decl", "Assign", None]
    cond: Expr | None
    step: Union["Assign", "IncDec", None]
    body: Block


@dataclass(frozen=True, slots=True)
class While:
    cond: Expr
    body: Block


@dataclass(frozen=True, slots=True)
class Return:
    value: Expr | None = None


Stmt = Union[Decl, Assign, IncDec, ExprStmt, Block, If, For, While, Return]

# --------------------------------------------------------------------------- top level


@dataclass(frozen=True, slots=True)
class Param:
    type: CType
    name: str


@dataclass(frozen=True, slots=True)
class FunctionDef:
    return_type: CType
    name: str
    params: tuple[Param, ...]
    body: Block
    #: CUDA execution-space qualifier ("__global__", ...) or None for plain C.
    qualifier: str | None = None


@dataclass(frozen=True, slots=True)
class TranslationUnit:
    includes: tuple[str, ...]
    functions: tuple[FunctionDef, ...]

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")


# --------------------------------------------------------------------------- traversal


def walk_exprs(e: Expr):
    """Yield ``e`` and every sub-expression, pre-order."""
    yield e
    if isinstance(e, Unary):
        yield from walk_exprs(e.operand)
    elif isinstance(e, Binary):
        yield from walk_exprs(e.left)
        yield from walk_exprs(e.right)
    elif isinstance(e, Ternary):
        yield from walk_exprs(e.cond)
        yield from walk_exprs(e.then)
        yield from walk_exprs(e.other)
    elif isinstance(e, Call):
        for a in e.args:
            yield from walk_exprs(a)
    elif isinstance(e, Index):
        yield from walk_exprs(e.base)
        yield from walk_exprs(e.index)
    elif isinstance(e, Cast):
        yield from walk_exprs(e.operand)


def walk_stmts(s: Stmt):
    """Yield ``s`` and every nested statement, pre-order."""
    yield s
    if isinstance(s, Block):
        for inner in s.stmts:
            yield from walk_stmts(inner)
    elif isinstance(s, If):
        yield from walk_stmts(s.then)
        if s.other is not None:
            yield from walk_stmts(s.other)
    elif isinstance(s, (For, While)):
        if isinstance(s, For) and s.init is not None:
            yield from walk_stmts(s.init)
        yield from walk_stmts(s.body)


def stmt_exprs(s: Stmt):
    """Yield the top-level expressions appearing directly in statement ``s``."""
    if isinstance(s, Decl):
        for d in s.declarators:
            if d.init is not None:
                yield d.init
            if d.array_init is not None:
                yield from d.array_init
    elif isinstance(s, Assign):
        yield s.target
        yield s.value
    elif isinstance(s, IncDec):
        yield s.target
    elif isinstance(s, ExprStmt):
        yield s.expr
    elif isinstance(s, If):
        yield s.cond
    elif isinstance(s, For):
        if s.cond is not None:
            yield s.cond
    elif isinstance(s, While):
        yield s.cond
    elif isinstance(s, Return) and s.value is not None:
        yield s.value


# --------------------------------------------------------------------------- structural editing
#
# Nodes are frozen, so edits rebuild the spine from the root.  A *step* is
# ``(field_name, index)`` — ``index`` is ``None`` for a direct child and a
# tuple position for children stored in tuple-valued fields — and a *path*
# is a tuple of steps from some root node.  The triage reducer uses these
# to enumerate and apply candidate edits anywhere in a translation unit.

#: Concrete classes of the Expr/Stmt unions, usable with ``isinstance``.
EXPR_TYPES = (IntLit, FloatLit, StrLit, Ident, Unary, Binary, Ternary, Call, Index, Cast)
STMT_TYPES = (Decl, Assign, IncDec, ExprStmt, Block, If, For, While, Return)

Step = tuple[str, "int | None"]
Path = tuple[Step, ...]


def is_node(value: object) -> bool:
    """Whether ``value`` is an AST node (a dataclass defined in this module)."""
    return is_dataclass(value) and type(value).__module__ == __name__


def child_steps(node):
    """Yield ``(step, child)`` for every direct AST child of ``node``.

    Children inside tuple-valued fields (block statements, call arguments,
    declarators, ...) get an indexed step; scalar fields (types, names,
    literal values) are skipped.
    """
    for f in fields(node):
        value = getattr(node, f.name)
        if is_node(value):
            yield (f.name, None), value
        elif isinstance(value, tuple):
            for i, item in enumerate(value):
                if is_node(item):
                    yield (f.name, i), item


def child_at(node, step: Step):
    """The child of ``node`` addressed by one step."""
    name, index = step
    value = getattr(node, name)
    return value if index is None else value[index]


def with_child(node, step: Step, new):
    """``node`` with the child at ``step`` replaced by ``new``."""
    name, index = step
    if index is None:
        return replace(node, **{name: new})
    value = getattr(node, name)
    return replace(node, **{name: value[:index] + (new,) + value[index + 1 :]})


def node_at(root, path: Path):
    """The node reached by following ``path`` from ``root``."""
    for step in path:
        root = child_at(root, step)
    return root


def replace_at(root, path: Path, new):
    """``root`` with the node at ``path`` replaced by ``new`` (spine rebuilt)."""
    if not path:
        return new
    child = child_at(root, path[0])
    return with_child(root, path[0], replace_at(child, path[1:], new))


def walk_paths(root, base: Path = ()):
    """Yield ``(path, node)`` for ``root`` and every descendant, pre-order.

    Paths are relative to ``root``; the traversal order is deterministic
    (field order, then tuple position), which the triage reducer relies on
    for reproducible minimal programs.
    """
    yield base, root
    for step, child in child_steps(root):
        yield from walk_paths(child, base + (step,))


def node_count(root) -> int:
    """Number of AST nodes in the subtree — the reducer's size metric."""
    return sum(1 for _ in walk_paths(root))
