"""C-subset frontend: lexer, parser, typed AST, semantic checks, printers.

The accepted language is the Varity grammar of the paper's Figure 2 plus
the constructs LLM-style generation produces within the paper's guidelines
(§2.3.1): ``stdio.h``/``stdlib.h``/``math.h`` only, two functions
(``compute`` and ``main``), scalar and array locals, nested ``for`` loops,
``if``/``else``, calls into the C math library, and ternary expressions.
"""

from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_program
from repro.frontend.sema import SemanticChecker, check_program
from repro.frontend.printer import print_c, print_cuda
from repro.frontend import ast

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "SemanticChecker",
    "check_program",
    "print_c",
    "print_cuda",
    "ast",
]
