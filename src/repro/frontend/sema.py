"""Semantic analysis: name resolution, type checking, and a UB lint.

The paper's prompts instruct the LLM to restrict library usage to
``stdio.h``/``stdlib.h``/``math.h``, initialize all variables, and avoid
undefined behaviour (§2.3.1); programs that violate the guidelines fail to
compile or are discarded.  This checker is where those rules become
machine-checkable: unknown functions/headers are rejected (a stand-in for
link failures), scalar reads are proven definitely-assigned, and static
array-bound violations are errors.  What cannot be proven statically
(uninitialized array elements, dynamic out-of-bounds indices) is trapped by
the interpreter at run time and the program is discarded by the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemaError
from repro.frontend import ast
from repro.frontend.ctypes import DOUBLE, INT, CType, common_arith_type
from repro.fp.mathlib import MATH_FUNCTIONS

__all__ = ["SemaOptions", "SemaResult", "Symbol", "SemanticChecker", "check_program"]

ALLOWED_HEADERS = frozenset({"stdio.h", "stdlib.h", "math.h", "cuda_runtime.h"})

#: stdlib/stdio functions callable from `main` only.
MAIN_ONLY_FUNCTIONS = {"atof": DOUBLE, "atoi": INT}


@dataclass(frozen=True)
class Symbol:
    """A declared variable (parameter or local)."""

    name: str
    type: CType
    is_param: bool = False

    @property
    def uid(self) -> int:
        return id(self)


@dataclass
class SemaOptions:
    """Tunable strictness knobs for the checker."""

    max_array_size: int = 4096
    require_compute: bool = True
    allowed_headers: frozenset[str] = ALLOWED_HEADERS
    max_params: int = 16


@dataclass
class SemaResult:
    """Side tables produced by a successful check.

    ``types`` maps ``id(expr-node)`` to its C type; ``symbols`` maps
    ``id(Ident-node)`` to its resolved :class:`Symbol`.  Keeping them
    out-of-band leaves the AST immutable and shareable across pipelines.
    """

    unit: ast.TranslationUnit
    types: dict[int, CType] = field(default_factory=dict)
    symbols: dict[int, Symbol] = field(default_factory=dict)

    def type_of(self, expr: ast.Expr) -> CType:
        return self.types[id(expr)]

    def symbol_of(self, ident: ast.Ident) -> Symbol:
        return self.symbols[id(ident)]


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, Symbol] = {}

    def declare(self, sym: Symbol) -> None:
        if sym.name in self.names:
            raise SemaError(f"redeclaration of {sym.name!r} in the same scope")
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class SemanticChecker:
    """Checks one translation unit; produces a :class:`SemaResult`."""

    def __init__(self, unit: ast.TranslationUnit, options: SemaOptions | None = None) -> None:
        self.unit = unit
        self.options = options or SemaOptions()
        self.result = SemaResult(unit)
        self._in_main = False

    # -- entry point -----------------------------------------------------------

    def check(self) -> SemaResult:
        self._check_includes()
        names = [f.name for f in self.unit.functions]
        if len(set(names)) != len(names):
            raise SemaError("duplicate function definitions")
        if self.options.require_compute:
            if "compute" not in names:
                raise SemaError("program must define a `compute` function")
            if "main" not in names:
                raise SemaError("program must define a `main` function")
            extra = set(names) - {"compute", "main"}
            if extra:
                raise SemaError(
                    f"only `compute` and `main` are allowed, found {sorted(extra)}"
                )
        for fn in self.unit.functions:
            self._check_function(fn)
        return self.result

    def _check_includes(self) -> None:
        for header in self.unit.includes:
            if header not in self.options.allowed_headers:
                raise SemaError(f"header {header!r} is not on the allow-list")

    # -- functions ----------------------------------------------------------------

    def _check_function(self, fn: ast.FunctionDef) -> None:
        self._in_main = fn.name == "main"
        if fn.name == "compute":
            if not fn.params:
                raise SemaError("`compute` must take at least one parameter")
            if len(fn.params) > self.options.max_params:
                raise SemaError(
                    f"`compute` has {len(fn.params)} parameters "
                    f"(max {self.options.max_params})"
                )
            for p in fn.params:
                ok = p.type.is_scalar and p.type.base in ("int", "float", "double")
                ok = ok or (p.type.pointers == 1 and p.type.base in ("float", "double"))
                if not ok:
                    raise SemaError(
                        f"`compute` parameter {p.name!r} has unsupported type {p.type}"
                    )
        scope = _Scope()
        assigned: set[int] = set()
        for p in fn.params:
            sym = Symbol(p.name, p.type, is_param=True)
            scope.declare(sym)
            assigned.add(sym.uid)
        if self._in_main:
            # argc/argv are conventionally available even if unlisted.
            for name, ctype in (("argc", INT), ("argv", CType("char", 2))):
                if scope.lookup(name) is None:
                    sym = Symbol(name, ctype, is_param=True)
                    scope.declare(sym)
                    assigned.add(sym.uid)
        self._check_block(fn.body, scope, assigned)

    # -- statements ------------------------------------------------------------------
    #
    # Each checker takes and mutates `assigned`, the set of Symbol uids that
    # are definitely assigned when control reaches the next statement.

    def _check_block(self, block: ast.Block, scope: _Scope, assigned: set[int]) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, assigned)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope, assigned: set[int]) -> None:
        if isinstance(stmt, ast.Decl):
            self._check_decl(stmt, scope, assigned)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope, assigned)
        elif isinstance(stmt, ast.IncDec):
            self._check_expr(stmt.target, scope, assigned)
            t = self.result.type_of(stmt.target)
            if not t.is_scalar:
                raise SemaError("++/-- requires a scalar target")
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope, assigned)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, assigned)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope, assigned)
            then_state = set(assigned)
            self._check_block(stmt.then, scope, then_state)
            if stmt.other is not None:
                else_state = set(assigned)
                self._check_block(stmt.other, scope, else_state)
                assigned |= then_state & else_state
            # without else: nothing new is definitely assigned
        elif isinstance(stmt, ast.For):
            loop_scope = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, loop_scope, assigned)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, loop_scope, assigned)
            # The body may execute zero times: check it against a copy.
            body_state = set(assigned)
            self._check_block(stmt.body, loop_scope, body_state)
            if stmt.step is not None:
                self._check_stmt(stmt.step, loop_scope, body_state)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope, assigned)
            body_state = set(assigned)
            self._check_block(stmt.body, scope, body_state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope, assigned)
        else:  # pragma: no cover - exhaustive over Stmt union
            raise SemaError(f"unsupported statement {type(stmt).__name__}")

    def _check_decl(self, decl: ast.Decl, scope: _Scope, assigned: set[int]) -> None:
        if decl.base.base == "void":
            raise SemaError("cannot declare a void variable")
        for d in decl.declarators:
            if d.array_size is not None:
                if d.array_size > self.options.max_array_size:
                    raise SemaError(
                        f"array {d.name!r} of size {d.array_size} exceeds limit "
                        f"{self.options.max_array_size}"
                    )
                if decl.base.pointers:
                    raise SemaError("arrays of pointers are not supported")
                ctype = CType(decl.base.base, 0, d.array_size)
            else:
                ctype = decl.base
            sym = Symbol(d.name, ctype)
            if d.init is not None:
                if d.array_size is not None:
                    raise SemaError(f"array {d.name!r} needs a brace initializer")
                self._check_expr(d.init, scope, assigned)
                self._require_scalar(d.init, f"initializer of {d.name!r}")
            if d.array_init is not None:
                if d.array_size is None:
                    raise SemaError(f"brace initializer on scalar {d.name!r}")
                if len(d.array_init) > d.array_size:
                    raise SemaError(f"too many initializers for {d.name!r}")
                for e in d.array_init:
                    self._check_expr(e, scope, assigned)
                    self._require_scalar(e, f"initializer of {d.name!r}")
            scope.declare(sym)
            if d.init is not None or d.array_init is not None:
                assigned.add(sym.uid)
            elif ctype.array_size is not None:
                # Arrays without initializers are tracked at run time; an
                # uninitialized *element* read traps in the interpreter.
                assigned.add(sym.uid)

    def _check_assign(self, stmt: ast.Assign, scope: _Scope, assigned: set[int]) -> None:
        self._check_expr(stmt.value, scope, assigned)
        self._require_scalar(stmt.value, "assigned value")
        if isinstance(stmt.target, ast.Ident):
            sym = scope.lookup(stmt.target.name)
            if sym is None:
                raise SemaError(f"assignment to undeclared variable {stmt.target.name!r}")
            if not sym.type.is_scalar:
                raise SemaError(f"cannot assign whole array/pointer {sym.name!r}")
            self.result.symbols[id(stmt.target)] = sym
            self.result.types[id(stmt.target)] = sym.type
            if stmt.op != "=" and sym.uid not in assigned:
                raise SemaError(
                    f"compound assignment reads {sym.name!r} before initialization"
                )
            assigned.add(sym.uid)
        elif isinstance(stmt.target, ast.Index):
            self._check_expr(stmt.target, scope, assigned, store=True)
        else:  # pragma: no cover - parser guarantees lvalue shape
            raise SemaError("invalid assignment target")

    # -- expressions -------------------------------------------------------------------

    def _set_type(self, expr: ast.Expr, ctype: CType) -> CType:
        self.result.types[id(expr)] = ctype
        return ctype

    def _require_scalar(self, expr: ast.Expr, what: str) -> None:
        if not self.result.type_of(expr).is_scalar:
            raise SemaError(f"{what} must be scalar, got {self.result.type_of(expr)}")

    def _check_expr(
        self, expr: ast.Expr, scope: _Scope, assigned: set[int], store: bool = False
    ) -> CType:
        if isinstance(expr, ast.IntLit):
            return self._set_type(expr, INT)
        if isinstance(expr, ast.FloatLit):
            return self._set_type(expr, CType("float") if expr.is_single else DOUBLE)
        if isinstance(expr, ast.StrLit):
            return self._set_type(expr, CType("char", 1))
        if isinstance(expr, ast.Ident):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise SemaError(f"use of undeclared identifier {expr.name!r}")
            self.result.symbols[id(expr)] = sym
            if sym.type.is_scalar and sym.uid not in assigned:
                raise SemaError(f"variable {expr.name!r} may be used uninitialized")
            return self._set_type(expr, sym.type)
        if isinstance(expr, ast.Unary):
            t = self._check_expr(expr.operand, scope, assigned)
            if not t.is_scalar:
                raise SemaError(f"unary {expr.op!r} requires a scalar operand")
            if expr.op == "!":
                return self._set_type(expr, INT)
            return self._set_type(expr, t)
        if isinstance(expr, ast.Binary):
            lt = self._check_expr(expr.left, scope, assigned)
            rt = self._check_expr(expr.right, scope, assigned)
            if expr.op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
                if not (lt.is_scalar and rt.is_scalar):
                    raise SemaError(f"operator {expr.op!r} requires scalar operands")
                return self._set_type(expr, INT)
            if expr.op == "%":
                if not (lt.is_int and rt.is_int):
                    raise SemaError("operator % requires integer operands")
                if isinstance(expr.right, ast.IntLit) and expr.right.value == 0:
                    raise SemaError("modulo by constant zero")
                return self._set_type(expr, INT)
            if expr.op in ("+", "-", "*", "/"):
                if expr.op == "/" and isinstance(expr.right, ast.IntLit) and (
                    expr.right.value == 0 and lt.is_int and rt.is_int
                ):
                    raise SemaError("integer division by constant zero")
                return self._set_type(expr, common_arith_type(lt, rt))
            raise SemaError(f"unsupported binary operator {expr.op!r}")
        if isinstance(expr, ast.Ternary):
            self._check_expr(expr.cond, scope, assigned)
            self._require_scalar(expr.cond, "ternary condition")
            tt = self._check_expr(expr.then, scope, assigned)
            ot = self._check_expr(expr.other, scope, assigned)
            return self._set_type(expr, common_arith_type(tt, ot))
        if isinstance(expr, ast.Index):
            base_t = self._check_expr(expr.base, scope, assigned)
            if not base_t.is_indexable:
                raise SemaError(f"cannot index a value of type {base_t}")
            idx_t = self._check_expr(expr.index, scope, assigned)
            if not idx_t.is_int:
                raise SemaError("array index must be an integer")
            if (
                isinstance(expr.index, ast.IntLit)
                and base_t.array_size is not None
                and not 0 <= expr.index.value < base_t.array_size
            ):
                raise SemaError(
                    f"constant index {expr.index.value} out of bounds "
                    f"for array of size {base_t.array_size}"
                )
            return self._set_type(expr, base_t.element)
        if isinstance(expr, ast.Cast):
            t = self._check_expr(expr.operand, scope, assigned)
            if not (t.is_scalar and expr.type.is_scalar):
                raise SemaError("casts are supported between scalar types only")
            return self._set_type(expr, expr.type)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope, assigned)
        raise SemaError(f"unsupported expression {type(expr).__name__}")

    def _check_call(self, expr: ast.Call, scope: _Scope, assigned: set[int]) -> CType:
        name = expr.name
        if name == "printf":
            if not expr.args or not isinstance(expr.args[0], ast.StrLit):
                raise SemaError("printf requires a literal format string")
            self._set_type(expr.args[0], CType("char", 1))
            for a in expr.args[1:]:
                self._check_expr(a, scope, assigned)
                self._require_scalar(a, "printf argument")
            return self._set_type(expr, INT)
        if name in MAIN_ONLY_FUNCTIONS:
            if not self._in_main:
                raise SemaError(f"{name} may only be called from main")
            for a in expr.args:
                self._check_expr(a, scope, assigned)
            return self._set_type(expr, MAIN_ONLY_FUNCTIONS[name])
        if name == "compute":
            if not self._in_main:
                raise SemaError("compute cannot call itself")
            target = self.unit.function("compute")
            if len(expr.args) != len(target.params):
                raise SemaError(
                    f"compute called with {len(expr.args)} args, "
                    f"expects {len(target.params)}"
                )
            for a in expr.args:
                self._check_expr(a, scope, assigned)
            return self._set_type(expr, target.return_type)
        spec = MATH_FUNCTIONS.get(name)
        if spec is not None:
            if len(expr.args) != spec.arity:
                raise SemaError(
                    f"{name} expects {spec.arity} argument(s), got {len(expr.args)}"
                )
            for a in expr.args:
                self._check_expr(a, scope, assigned)
                self._require_scalar(a, f"argument of {name}")
            return self._set_type(expr, DOUBLE)
        raise SemaError(f"call to unknown function {name!r}")


def check_program(
    unit: ast.TranslationUnit, options: SemaOptions | None = None
) -> SemaResult:
    """Run semantic analysis; raises :class:`SemaError` on the first issue."""
    return SemanticChecker(unit, options).check()
