"""The tiny C type system used by the frontend and lowering."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CType:
    """A C type: one of the scalar bases, or a pointer/array derivation.

    ``base`` is one of ``int``, ``float``, ``double``, ``char``, ``void``;
    ``pointers`` counts ``*`` levels; ``array_size`` is set for sized array
    declarations (``double a[8]``).
    """

    base: str
    pointers: int = 0
    array_size: int | None = None

    def __post_init__(self) -> None:
        if self.base not in ("int", "float", "double", "char", "void"):
            raise ValueError(f"unsupported base type {self.base!r}")
        if self.pointers < 0:
            raise ValueError("negative pointer depth")
        if self.array_size is not None and self.array_size <= 0:
            raise ValueError("array size must be positive")

    # -- predicates ---------------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.pointers == 0 and self.array_size is None

    @property
    def is_fp(self) -> bool:
        return self.is_scalar and self.base in ("float", "double")

    @property
    def is_int(self) -> bool:
        return self.is_scalar and self.base == "int"

    @property
    def is_indexable(self) -> bool:
        return self.pointers > 0 or self.array_size is not None

    @property
    def element(self) -> "CType":
        """Element type of a pointer or array."""
        if self.array_size is not None:
            return CType(self.base, self.pointers)
        if self.pointers > 0:
            return CType(self.base, self.pointers - 1)
        raise TypeError(f"{self} is not indexable")

    def __str__(self) -> str:
        s = self.base + "*" * self.pointers
        if self.array_size is not None:
            s += f"[{self.array_size}]"
        return s


INT = CType("int")
FLOAT = CType("float")
DOUBLE = CType("double")
VOID = CType("void")


def common_arith_type(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions for our scalar subset."""
    if not (a.is_scalar and b.is_scalar):
        raise TypeError(f"cannot combine {a} and {b}")
    if "double" in (a.base, b.base):
        return DOUBLE
    if "float" in (a.base, b.base):
        return FLOAT
    return INT
