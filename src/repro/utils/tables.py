"""Minimal monospaced table rendering for experiment reports.

The experiment runners print the same rows the paper's tables report;
this renderer keeps that output dependency-free and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class TextTable:
    """A left-aligned text table with a header row and optional title."""

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(row: Sequence[str]) -> str:
            return "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
