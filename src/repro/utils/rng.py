"""Deterministic, splittable random streams.

Every stochastic component in the library draws from a :class:`SplittableRng`
so that campaigns are reproducible bit-for-bit from a single integer seed.
Child streams are derived from (parent key, label) pairs rather than by
sharing state, so adding a new consumer never perturbs existing streams —
the property that makes A/B ablations meaningful.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def _derive_key(key: int, label: str) -> int:
    digest = hashlib.blake2b(
        label.encode("utf-8"), key=key.to_bytes(8, "little"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class SplittableRng:
    """A seeded random stream that can fork independent child streams.

    The instance wraps :class:`random.Random` for sampling and keeps a
    64-bit key for derivation.  ``split(label)`` returns a child whose
    sequence depends only on ``(seed, path-of-labels)``.
    """

    def __init__(self, seed: int, _label: str = "root") -> None:
        self._key = _derive_key(seed & _MASK64, _label)
        self._random = random.Random(self._key)
        self._label = _label

    @property
    def label(self) -> str:
        return self._label

    def split(self, label: str) -> "SplittableRng":
        """Fork an independent child stream named ``label``."""
        child = SplittableRng.__new__(SplittableRng)
        child._key = _derive_key(self._key, label)
        child._random = random.Random(child._key)
        child._label = f"{self._label}/{label}"
        return child

    # -- sampling ---------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._random.randint(lo, hi)

    def getrandbits(self, k: int) -> int:
        return self._random.getrandbits(k)

    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise IndexError("choice from empty sequence")
        return seq[self._random.randrange(len(seq))]

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int = 1) -> list[T]:
        return self._random.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._random.sample(list(seq), k)

    def shuffle(self, items: list[T]) -> None:
        self._random.shuffle(items)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        return self._random.gauss(mu, sigma)

    def expovariate(self, lambd: float) -> float:
        return self._random.expovariate(lambd)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._random.random() < p

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Sample an index proportionally to non-negative ``weights``."""
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must have positive sum")
        x = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if x < acc:
                return i
        return len(weights) - 1

    # -- state snapshot ---------------------------------------------------

    def export_state(self) -> dict:
        """The stream position as a JSON-serializable dict.

        The key (identity) is *not* exported: a snapshot restores onto a
        stream constructed with the same ``(seed, path-of-labels)``.
        """
        version, internal, gauss_next = self._random.getstate()
        return {"version": version, "state": list(internal), "gauss": gauss_next}

    def import_state(self, state: dict) -> None:
        self._random.setstate(
            (state["version"], tuple(state["state"]), state["gauss"])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplittableRng(label={self._label!r}, key={self._key:#018x})"
