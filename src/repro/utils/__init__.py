"""Shared utilities: deterministic RNG streams, timing, table rendering."""

from repro.utils.rng import SplittableRng
from repro.utils.timing import Stopwatch, format_hms
from repro.utils.tables import TextTable

__all__ = ["SplittableRng", "Stopwatch", "format_hms", "TextTable"]
