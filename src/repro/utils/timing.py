"""Wall-clock accounting for campaign time-cost reporting (Table 2)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def format_hms(seconds: float) -> str:
    """Format a duration as ``hh:mm:ss``, the unit used by the paper."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h:02d}:{m:02d}:{s:02d}"


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across named phases.

    Campaigns charge generation / compilation / execution / comparison time
    to separate buckets so the report can attribute cost the way the paper's
    §3.2.3 discussion does (LLM latency dominates the LLM-based approaches).
    """

    buckets: dict[str, float] = field(default_factory=dict)
    _open: dict[str, float] = field(default_factory=dict, repr=False)

    def start(self, phase: str) -> None:
        if phase in self._open:
            raise RuntimeError(f"phase {phase!r} already running")
        self._open[phase] = time.perf_counter()

    def stop(self, phase: str) -> float:
        try:
            t0 = self._open.pop(phase)
        except KeyError:
            raise RuntimeError(f"phase {phase!r} was not started") from None
        dt = time.perf_counter() - t0
        self.buckets[phase] = self.buckets.get(phase, 0.0) + dt
        return dt

    def charge(self, phase: str, seconds: float) -> None:
        """Directly add ``seconds`` to ``phase`` (synthetic latency models)."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.buckets[phase] = self.buckets.get(phase, 0.0) + seconds

    class _PhaseCtx:
        def __init__(self, sw: "Stopwatch", phase: str) -> None:
            self._sw, self._phase = sw, phase

        def __enter__(self) -> None:
            self._sw.start(self._phase)

        def __exit__(self, *exc: object) -> None:
            self._sw.stop(self._phase)

    def phase(self, name: str) -> "Stopwatch._PhaseCtx":
        return Stopwatch._PhaseCtx(self, name)

    @property
    def total(self) -> float:
        return sum(self.buckets.values())

    def as_hms(self) -> str:
        return format_hms(self.total)
