"""Smoke-run every script under examples/ against the installed package.

Examples are documentation that executes; without CI coverage they rot
silently (stale imports, renamed APIs).  This driver discovers
``examples/*.py`` so a new example is covered the moment it lands: known
scripts run with small budgets (CI-friendly seconds, not minutes),
unknown ones run with no arguments.  Any non-zero exit fails the job.

    python scripts/run_examples.py            # all examples
    python scripts/run_examples.py quickstart # substring filter
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

#: Small-budget arguments per example (argv after the script name).
#: Discovered examples without an entry run with no arguments.
ARGS: dict[str, list[str]] = {
    "quickstart.py": ["12", "1"],
    "compare_compilers.py": ["12", "1"],
    "mutation_campaign.py": ["12", "1"],
    "precision_sweep.py": ["8", "1"],
    "triage_inconsistency.py": [],
    # defaults (24 trips, seed 3) are pinned to a diverging configuration
    "vectorization_divergence.py": [],
    # defaults (24 trips, seed 1) are pinned to a diverging configuration
    "masked_vectorization.py": [],
}


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    needle = args[0] if args else ""
    examples_dir = Path(__file__).resolve().parent.parent / "examples"
    scripts = sorted(examples_dir.glob("*.py"))
    if not scripts:
        print(f"no examples found under {examples_dir}", file=sys.stderr)
        return 2
    failures = []
    for script in scripts:
        if needle and needle not in script.name:
            continue
        cmd = [sys.executable, str(script), *ARGS.get(script.name, [])]
        print(f"==> {' '.join(cmd[1:])}", flush=True)
        start = time.perf_counter()
        proc = subprocess.run(cmd)
        elapsed = time.perf_counter() - start
        status = "ok" if proc.returncode == 0 else f"FAILED ({proc.returncode})"
        print(f"<== {script.name}: {status} in {elapsed:.1f}s", flush=True)
        if proc.returncode != 0:
            failures.append(script.name)
    if failures:
        print(f"\n{len(failures)} example(s) failed: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
