"""Regenerate the committed nightly fixture corpus.

``benchmarks/fixtures/corpus_fixture.jsonl`` is the longitudinal
baseline for the nightly CI corpus leg: the nightly job runs the same
campaign spec, ingests it into a scratch copy of the fixture, and
uploads whatever signatures the fixture did not already hold as the
``corpus-new-root-causes`` artifact.  In steady state that artifact
reports zero new signatures; after an intentional compiler-model change
it lists exactly the root causes the change introduced — at which point
this script regenerates the fixture (commit the result):

    python scripts/make_corpus_fixture.py

The campaign spec below must stay in lockstep with the nightly job in
``.github/workflows/ci.yml`` — a spec drift makes every nightly diff
noisy.  The fixture is byte-deterministic for a given spec and compiler
model (see docs/corpus.md), so regeneration without a model change is a
no-op diff.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.corpus import TriggerCorpus
from repro.difftest.store import load_result

REPO = Path(__file__).resolve().parent.parent
FIXTURE = REPO / "benchmarks" / "fixtures" / "corpus_fixture.jsonl"

#: (approach, budget) — must match the nightly corpus leg in ci.yml;
#: the seed is the ExperimentSettings default, also used by the nightly.
SPEC = ("varity", 50)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the committed nightly fixture corpus"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=FIXTURE,
        help=f"fixture path (default: {FIXTURE.relative_to(REPO)})",
    )
    args = parser.parse_args(argv)
    approach, budget = SPEC
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "fixture-campaign.jsonl"
        code = cli_main(
            [
                "run", "--approach", approach, "--budget", str(budget),
                "--quiet", "--resume", str(checkpoint),
            ]
        )
        if code != 0:
            print(f"fixture campaign failed (exit {code})", file=sys.stderr)
            return code
        outcomes = load_result(checkpoint).outcomes
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.unlink(missing_ok=True)
        with TriggerCorpus(args.out) as corpus:
            report = corpus.ingest(outcomes, "fixture")
    print(
        f"wrote {args.out}: {len(report.new_keys)} signature(s) from "
        f"{approach} budget {budget} ({report.triggers} triggers, "
        f"model {report.model})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
