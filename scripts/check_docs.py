"""Docs CI: run the documentation's code snippets and check its links.

Documentation that never executes rots silently.  This driver keeps the
docs honest two ways:

* every fenced ```python block in ``docs/*.md`` and ``README.md`` that
  contains ``>>>`` interpreter sessions is executed through
  :mod:`doctest` (one shared namespace per file, so later snippets can
  build on earlier ones);
* every relative markdown link/image target must resolve to an existing
  file (external ``http(s)``/``mailto`` links and pure ``#`` anchors are
  skipped — CI must not depend on the network);
* every ``llm4fp`` subcommand registered in ``src/repro/cli.py`` and
  every ``REPRO_*`` environment knob referenced anywhere under ``src/``
  must be mentioned somewhere in the documentation — a new subcommand or
  knob that ships undocumented fails the job (the coverage sweep runs
  only on unfiltered invocations).

Any doctest failure, dangling link or coverage gap fails the job.

    python scripts/check_docs.py            # all docs
    python scripts/check_docs.py vector     # substring filter on file names
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
#: [text](target) and ![alt](target), ignoring images' titles
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: subcommand registrations in the CLI module
_SUBCOMMAND = re.compile(r"add_parser\(\s*\n?\s*\"([a-z][a-z-]*)\"")
#: environment knobs anywhere in the package source (no trailing
#: underscore: prose like ``REPRO_FLEET_*`` is a family, not a knob)
_ENV_KNOB = re.compile(r"\bREPRO_[A-Z]+(?:_[A-Z]+)*\b")


def doctest_blocks(path: Path) -> tuple[int, int]:
    """Run every ``>>>`` snippet in ``path``; returns (attempted, failed)."""
    text = path.read_text(encoding="utf-8")
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    parser = doctest.DocTestParser()
    globs: dict = {}  # shared across the file's blocks, like one session
    attempted = failed = 0
    for i, match in enumerate(_FENCE.finditer(text)):
        block = match.group(1)
        if ">>>" not in block:
            continue
        test = parser.get_doctest(block, globs, f"{path.name}[{i}]", str(path), 0)
        result = runner.run(test, clear_globs=False)
        globs.update(test.globs)  # get_doctest copies; carry state forward
        attempted += result.attempted
        failed += result.failed
    return attempted, failed


def check_links(path: Path) -> list[str]:
    """Dangling relative link targets in ``path`` (empty = all resolve)."""
    problems = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO)}: dangling link -> {target}")
    return problems


def coverage_problems() -> list[str]:
    """CLI subcommands and ``REPRO_*`` knobs the docs fail to mention.

    Mention-level coverage, deliberately grep-based: ``llm4fp <name>``
    must appear verbatim in some doc page for every registered
    subcommand, and every environment knob the source reads must appear
    by name.  ``docs/configuration.md`` is the natural home for knobs;
    anywhere in the docs (README included) counts.
    """
    docs_text = "\n".join(
        path.read_text(encoding="utf-8") for path in DOC_FILES if path.exists()
    )
    problems = []
    cli_source = (REPO / "src" / "repro" / "cli.py").read_text(encoding="utf-8")
    for name in sorted(set(_SUBCOMMAND.findall(cli_source))):
        if f"llm4fp {name}" not in docs_text:
            problems.append(
                f"undocumented CLI subcommand: `llm4fp {name}` appears in "
                "no doc page (add it to README.md or docs/)"
            )
    knobs: set[str] = set()
    for path in sorted((REPO / "src").rglob("*.py")):
        knobs.update(_ENV_KNOB.findall(path.read_text(encoding="utf-8")))
    for knob in sorted(knobs):
        if knob not in docs_text:
            problems.append(
                f"undocumented environment knob: {knob} appears in no doc "
                "page (docs/configuration.md is its reference table)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    needle = args[0] if args else ""
    failures = 0
    total = 0
    checked = 0
    link_problems: list[str] = []
    for path in DOC_FILES:
        if needle and needle not in path.name:
            continue
        if not path.exists():
            print(f"MISSING: {path}", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        attempted, failed = doctest_blocks(path)
        total += attempted
        failures += failed
        link_problems.extend(check_links(path))
        status = "ok" if not failed else f"{failed} FAILED"
        print(f"{path.relative_to(REPO)}: {attempted} doctest example(s), {status}")
    coverage = coverage_problems() if not needle else []
    for problem in (*link_problems, *coverage):
        print(problem, file=sys.stderr)
    if not checked:
        print(f"no doc file matches {needle!r}", file=sys.stderr)
        return 2
    if not total and not needle:
        print("no doctest examples found — docs missing?", file=sys.stderr)
        return 2
    return 1 if failures or link_problems or coverage else 0


if __name__ == "__main__":
    raise SystemExit(main())
