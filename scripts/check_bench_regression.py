"""Benchmark-regression gate for CI.

Compares a fresh ``BENCH_engine.json`` (written by
``benchmarks/bench_engine.py --json``) against the committed baseline and
fails when any gated higher-is-better metric drops more than the
threshold (default 30%).

Gated metrics (all higher-is-better):

* ``thread_speedup`` — thread/dedup engine vs the serial loop.  A pure
  ratio, so it transfers across machines of different absolute speed.
  This is the **hard gate**: a drop below baseline x (1 - threshold)
  fails the job on any machine.
* ``configs.thread.throughput`` — absolute programs/sec of the full
  engine.  Catches regressions that slow serial and engine alike (which
  a ratio hides), but absolute wall-clock does not transfer across
  machines — a slow CI runner is not a code regression.  By default a
  drop below the floor only *warns*; pass ``--strict`` to make it fail
  (sensible when comparing runs from the same machine, e.g. against the
  previous run's artifact).
* ``tape_speedup`` — batched tape execution vs the tree interpreter
  over the workload's kernel matrix.  A ratio of two measurements on the
  same machine, so it transfers; enforced as a hard gate alongside
  ``thread_speedup``.
* ``loops_throughput`` — absolute programs/sec of the loops workload
  (the vector + masking tier: if-convert/unroll/widening in the compile
  stage, lane math in the execute stage).  Warn-only for the same
  absolute-wall-clock reason; it tracks the tier's cost as it grows.
* ``loops_tape_throughput`` — the same loops campaign under the default
  tape executor; warn-only, absolute.
* ``island_throughput`` — absolute programs/sec of the llm4fp island
  campaign (fitness census + SUS strategy selection + merge-point
  migrant exchange in the generate stage); warn-only, absolute.  The
  island determinism contract itself is asserted inside the benchmark,
  not gated here.
* ``corpus_replay_overhead`` — per-program throughput of the campaign
  behind the corpus regression prelude, relative to the bare campaign
  (1.0 = the prelude is free).  A ratio of two runs on the same
  machine, but of a tiny prelude over a small workload, so it is noisy
  on shared runners — warn-only.  That every replayed seed re-triggers
  is asserted inside the benchmark, not gated here.
* ``tiers_throughput`` — absolute programs/sec of the full-tier-profile
  loops campaign (vec-libm environments, mixed-precision and
  integer-guard widening); warn-only, absolute.
* ``tier_tag_floor`` — minimum count across the three new structural
  tags in the full-tier leg.  Warn-only here (counts are a coverage
  signal, not a speed one — a drop flags a generator/policy change
  starving a tier); that the floor is *nonzero* is asserted inside the
  benchmark itself.

Usage::

    python scripts/check_bench_regression.py BENCH_engine.json
    python scripts/check_bench_regression.py BENCH_engine.json --strict
    python scripts/check_bench_regression.py BENCH_engine.json --update-baseline

Exit status 0 = within budget, 1 = regression, 2 = usage/format error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent.parent / "benchmarks" / "BENCH_engine_baseline.json"

#: machine-transferable ratios: always enforced
HARD_METRICS = ("thread_speedup", "tape_speedup")
#: absolute wall-clock numbers: warn-only unless --strict
SOFT_METRICS = (
    "configs.thread.throughput",
    "loops_throughput",
    "loops_tape_throughput",
    "island_throughput",
    "corpus_replay_overhead",
    "tiers_throughput",
    "tier_tag_floor",
)
GATED_METRICS = HARD_METRICS + SOFT_METRICS


def _lookup(data: dict, dotted: str):
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def check(
    current: dict, baseline: dict, threshold: float, strict: bool = False
) -> tuple[list[str], list[str]]:
    """(failures, warnings) for gated metrics below
    ``baseline * (1 - threshold)``; soft metrics only fail when strict."""
    failures: list[str] = []
    warnings: list[str] = []
    for metric in GATED_METRICS:
        try:
            base = float(_lookup(baseline, metric))
        except KeyError:
            continue  # baseline predates this metric; nothing to gate
        now = float(_lookup(current, metric))
        floor = base * (1.0 - threshold)
        if now < floor:
            message = (
                f"{metric}: {now:.2f} is below {floor:.2f} "
                f"(baseline {base:.2f}, allowed regression {threshold:.0%})"
            )
            if metric in HARD_METRICS or strict:
                failures.append(message)
            else:
                warnings.append(message + " [absolute metric, warn-only]")
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="fresh BENCH_engine.json to check")
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help=f"committed baseline (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="max allowed fractional regression per metric (default 0.30)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail (not just warn) on absolute-throughput regressions",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baseline with the fresh results instead of gating",
    )
    args = parser.parse_args(argv)
    try:
        current = json.loads(Path(args.results).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read results {args.results}: {e}", file=sys.stderr)
        return 2
    if args.update_baseline:
        Path(args.baseline).write_text(
            json.dumps(current, indent=2) + "\n", encoding="utf-8"
        )
        print(f"baseline updated: {args.baseline}")
        return 0
    try:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read baseline {args.baseline}: {e}", file=sys.stderr)
        return 2
    failures, warnings = check(current, baseline, args.threshold, args.strict)
    for metric in GATED_METRICS:
        try:
            base, now = _lookup(baseline, metric), _lookup(current, metric)
            print(f"{metric}: baseline {base:.2f} -> current {now:.2f}")
        except KeyError:
            print(f"{metric}: not in baseline (skipped)")
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("benchmark within regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
