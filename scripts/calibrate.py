"""Calibration: run small campaigns for all approaches and print the
shape-relevant numbers next to the paper's targets."""

import sys
import time

sys.path.insert(0, "src")

from repro.difftest.config import CampaignConfig
from repro.difftest.harness import run_campaign
from repro.difftest.report import CampaignReport
from repro.experiments.approaches import APPROACHES, make_generator
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

BUDGET = int(sys.argv[1]) if len(sys.argv) > 1 else 100

PAPER = {
    "varity": 11.93,
    "direct-prompt": 14.23,
    "grammar-guided": 16.47,
    "llm4fp": 29.33,
}

for approach in APPROACHES:
    t0 = time.time()
    rng = SplittableRng(20250916, f"approach-{approach}")
    gen = make_generator(approach, rng)
    result = run_campaign(gen, default_compilers(), CampaignConfig(budget=BUDGET))
    report = CampaignReport(result)
    dt = time.time() - t0
    n_compile_fail = sum(
        1 for o in result.outcomes if not all(o.compiled.values()) or not o.compiled
    )
    n_trap = sum(
        1
        for o in result.outcomes
        if o.compiled and all(o.compiled.values()) and not all(o.ran.values())
    )
    print(
        f"{approach:>15}: rate={result.inconsistency_rate*100:6.2f}% "
        f"(paper {PAPER[approach]:.2f}%) incons={result.inconsistencies:5d} "
        f"trigger_progs={result.triggering_programs:4d}/{BUDGET} "
        f"badcompile={n_compile_fail:3d} traps={n_trap:3d} [{dt:.1f}s]"
    )
    if approach in ("varity", "llm4fp"):
        kinds = report.kind_counts().as_labels()
        print(f"   kinds: {kinds}")
        t5 = report.vs_o0_nofma_totals()
        print(f"   vs_o0_nofma totals: { {k: f'{v*100:.2f}%' for k, v in t5.items()} }")
        pt = report.pair_totals()
        print(f"   pair totals: { {f'{a},{b}': f'{v*100:.2f}%' for (a, b), v in pt.items()} }")
        ds = report.digit_stats_overall()
        print(f"   digit diffs: min={ds.min} max={ds.max} avg={ds.avg:.2f}")
