"""E-T5: regenerate Table 5 — each level vs O0_nofma, within one compiler.

Paper shape:

* Varity only really detects differences at O3_fastmath (rates at O0-O3
  near zero); LLM4FP reports higher rates across all levels;
* O3_fastmath is the worst level for the host compilers;
* summed over levels, LLM4FP exceeds Varity for every compiler;
* nvcc differs from its own O0_nofma even at O0 (FMA contraction) under
  LLM4FP — the flat nonzero nvcc column.
"""

from __future__ import annotations

from conftest import once, save_artifact

from repro.experiments import table5
from repro.toolchains.optlevels import OptLevel


def bench_table5(benchmark, ctx, out_dir):
    data = once(benchmark, lambda: table5.compute(ctx))
    save_artifact(out_dir, "table5.txt", table5.render(data, ctx.settings.budget))

    varity, llm4fp = data["varity"], data["llm4fp"]

    for compiler in ("gcc", "clang", "nvcc"):
        total_var = sum(varity[compiler].values())
        total_llm = sum(llm4fp[compiler].values())
        # LLM4FP finds more within-compiler variation everywhere.
        assert total_llm >= total_var, compiler

    # Hosts: O3_fastmath is the worst level for both approaches.
    for compiler in ("gcc", "clang"):
        rates = llm4fp[compiler]
        assert rates[OptLevel.O3_FASTMATH] == max(rates.values()), compiler

    # nvcc's column is flat (contraction is level-independent from O0 up)
    # and the smallest of the three: the paper's "nvcc is the most stable".
    nvcc_rates = list(llm4fp["nvcc"].values())
    assert max(nvcc_rates) - min(nvcc_rates) < 1e-9
    assert sum(llm4fp["nvcc"].values()) <= sum(llm4fp["gcc"].values())
    assert sum(llm4fp["nvcc"].values()) <= sum(llm4fp["clang"].values())

    # Varity's host rates below O3_fastmath are (near) zero — it needs
    # aggressive optimization to see within-compiler differences.
    for compiler in ("gcc", "clang"):
        below = sum(
            rate
            for lvl, rate in varity[compiler].items()
            if lvl is not OptLevel.O3_FASTMATH
        )
        assert below <= varity[compiler][OptLevel.O3_FASTMATH] + 1e-9, compiler
