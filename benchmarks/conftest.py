"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one paper artefact (a table or figure)
and asserts its *shape* — who wins, by roughly what factor, where the mass
concentrates — rather than absolute numbers, which depend on the budget.

The campaign budget defaults to a size that completes in minutes; override
with ``REPRO_BENCH_BUDGET`` for tighter statistics (the paper uses 1,000):

    REPRO_BENCH_BUDGET=200 pytest benchmarks/ --benchmark-only

Rendered artefacts are written to ``benchmarks/out/`` for inspection and
for the EXPERIMENTS.md paper-vs-measured record.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentContext
from repro.experiments.settings import ExperimentSettings

OUT_DIR = Path(__file__).parent / "out"


def campaign_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_BUDGET", "100"))


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """One campaign per approach, shared by every artefact benchmark."""
    settings = ExperimentSettings(budget=campaign_budget())
    return ExperimentContext(settings)


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(out_dir: Path, name: str, rendered: str) -> None:
    (out_dir / name).write_text(rendered + "\n", encoding="utf-8")
    print("\n" + rendered)


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    Campaign-scale artefacts are far too heavy for statistical rounds; a
    single timed round still reports the regeneration cost per artefact.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
