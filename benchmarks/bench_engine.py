"""E-ENG: campaign throughput — serial loop vs thread vs process backends.

Replays one fixed program workload (the substrate benchmark generator)
through three engine configurations:

* **serial** — ``backend=serial``, compile cache off, run sharing off:
  the exact cost model of the pre-engine monolithic loop (recompile and
  re-execute every (compiler, level) cell from scratch).
* **thread** — ``backend=thread, jobs=4`` with the content-addressed
  compile cache and identical-binary run sharing on.  Its speedup is
  funded by *dedup* (the GIL serializes the thread workers).
* **process** — ``backend=process, jobs=auto`` with the same caching:
  execute tasks ship to a process pool as picklable kernel specs, adding
  real multi-core parallelism on top of the dedup.

Asserted shape: every configuration produces a byte-identical
CampaignResult; the thread/dedup engine sustains >= 1.6x the serial
programs/sec on any machine; the process backend sustains >= 1.6x serial
on multi-core hardware (on a single core its IPC overhead is reported
but not asserted — there is no parallelism to buy).

The dedup floor was 2x before the vectorization tier: splitting O2/O3
into their own (pipeline, environment) classes (gcc/clang 3 -> 5 level
classes) is *less* redundancy for the cache and run sharing to collapse,
so the structural speedup ceiling dropped with it.  That is a modeling
change, not an engine regression — the measured floor is re-derived
(~2.0x observed on a 1-CPU container; 1.6x leaves headroom for noisy
runners) and the committed baseline regenerated.

Run standalone for a report plus machine-readable results::

    python benchmarks/bench_engine.py --json BENCH_engine.json

``scripts/check_bench_regression.py`` compares that JSON against the
committed baseline (``benchmarks/BENCH_engine_baseline.json``) and fails
on >30% throughput regression — the CI gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.experiments.approaches import make_generator
from repro.fp.bits import double_to_hex
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

#: enough programs for a stable ratio, small enough for CI
_BUDGET = 40
_SEED = 20250916

#: loops-workload budget: the vector/masking tier's cost tracker (the
#: loops generator produces reduction and guarded kernels, so compile
#: cost includes if-convert + unroll + widening at every masking level)
_LOOPS_BUDGET = 24

CONFIGS = {
    "serial": EngineConfig(
        backend="serial", jobs=1, compile_cache=False, share_runs=False
    ),
    "thread": EngineConfig(
        backend="thread", jobs=4, compile_cache=True, share_runs=True
    ),
    "process": EngineConfig(
        backend="process", jobs="auto", compile_cache=True, share_runs=True
    ),
}


class _Replay:
    """Replays a pre-generated program list (identical for every config)."""

    name = "replay"

    def __init__(self, programs):
        self._programs = list(programs)
        self._next = 0

    def generate(self):
        program = self._programs[self._next]
        self._next += 1
        return program

    def notify_success(self, program):
        pass


def _workload(budget: int = _BUDGET):
    rng = SplittableRng(_SEED, "bench-engine")
    generator = make_generator("varity", rng)
    return [generator.generate() for _ in range(budget)]


def _loops_workload(budget: int = _LOOPS_BUDGET):
    rng = SplittableRng(_SEED, "bench-engine-loops")
    generator = make_generator("loops", rng)
    return [generator.generate() for _ in range(budget)]


def _run(programs, engine_config):
    engine = CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=len(programs)),
        engine_config,
    )
    t0 = time.perf_counter()
    result = engine.run(_Replay(programs))
    seconds = time.perf_counter() - t0
    return result, seconds


def _hex(v):
    return None if v is None else double_to_hex(v)


def _result_key(result):
    return [
        (
            o.index,
            o.compiled,
            o.ran,
            o.signatures,
            {k: _hex(v) for k, v in o.values.items()},
            [
                (c.compiler_a, c.compiler_b, c.level, c.consistent, c.digit_diff)
                for c in o.comparisons
            ],
            o.triggered,
        )
        for o in result.outcomes
    ]


def measure(budget: int = _BUDGET, loops_budget: int = _LOOPS_BUDGET) -> dict:
    programs = _workload(budget)
    keys = {}
    configs = {}
    shared = {}
    for name, engine_config in CONFIGS.items():
        result, seconds = _run(programs, engine_config)
        keys[name] = _result_key(result)
        configs[name] = {
            "seconds": seconds,
            "throughput": budget / seconds,
            "jobs": engine_config.resolved_jobs,
        }
        shared[name] = result
    serial_s = configs["serial"]["seconds"]
    # Loops workload (ROADMAP: bench coverage for the vector tier): the
    # same thread/dedup engine over reduction + guarded kernels, whose
    # compile stage runs if-convert/unroll/widening and whose execute
    # stage interprets lane math — a budget-normalized cost tracker that
    # moves when the tier's passes or the interpreter's lane path do.
    loops_programs = _loops_workload(loops_budget)
    loops_result, loops_seconds = _run(loops_programs, CONFIGS["thread"])
    loops_tags = sum(
        1
        for o in loops_result.outcomes
        for c in o.comparisons
        if not c.consistent and c.tag
    )
    return {
        "schema": 3,
        "budget": budget,
        "cpu_count": os.cpu_count() or 1,
        "configs": configs,
        "thread_speedup": serial_s / configs["thread"]["seconds"],
        "process_speedup": serial_s / configs["process"]["seconds"],
        "identical": all(keys[n] == keys["serial"] for n in CONFIGS),
        "run_share_rate": shared["thread"].run_share_rate,
        "cache_hit_rate": shared["thread"].cache_hit_rate,
        "stage_seconds": shared["thread"].stage_seconds,
        "loops_budget": loops_budget,
        "loops_throughput": loops_budget / loops_seconds,
        "loops_structural_tags": loops_tags,
    }


def render(m: dict) -> str:
    c = m["configs"]
    lines = [
        f"engine throughput (substrate workload, {m['budget']} programs, "
        f"{m['cpu_count']} CPUs)",
        f"  serial   (inline, no cache, no sharing):   "
        f"{c['serial']['throughput']:7.1f} programs/s",
        f"  thread   (jobs=4, cache + sharing):        "
        f"{c['thread']['throughput']:7.1f} programs/s  "
        f"({m['thread_speedup']:.2f}x)",
        f"  process  (jobs={c['process']['jobs']}, cache + sharing):"
        f"        {c['process']['throughput']:7.1f} programs/s  "
        f"({m['process_speedup']:.2f}x)",
        f"  identical results across backends: {m['identical']}",
        f"  run share rate: {m['run_share_rate'] * 100:.1f}%"
        f"   cache hit rate: {m['cache_hit_rate'] * 100:.1f}%",
        "  thread stage seconds:   "
        + "  ".join(f"{k}={v:.2f}" for k, v in m["stage_seconds"].items()),
        f"  loops workload ({m['loops_budget']} programs, vector+mask tier): "
        f"{m['loops_throughput']:7.1f} programs/s, "
        f"{m['loops_structural_tags']} structural tags",
    ]
    return "\n".join(lines)


def check(m: dict) -> list[str]:
    """The acceptance assertions; returns human-readable failures."""
    failures = []
    if not m["identical"]:
        failures.append("serial/thread/process results differ (determinism broken)")
    if m["thread_speedup"] < 1.6:
        failures.append(
            f"thread/dedup speedup {m['thread_speedup']:.2f}x < 1.6x over serial"
        )
    if m["run_share_rate"] < 0.5:
        failures.append(
            f"run share rate {m['run_share_rate'] * 100:.1f}% < 50%"
        )
    if m["cpu_count"] >= 2 and m["process_speedup"] < 1.6:
        failures.append(
            f"process speedup {m['process_speedup']:.2f}x < 1.6x over serial "
            f"on a {m['cpu_count']}-CPU machine"
        )
    if m["loops_structural_tags"] < 1:
        failures.append(
            "loops workload produced no structural (vector/masked) tags — "
            "the tier the benchmark exists to cover did not engage"
        )
    return failures


def bench_engine_throughput(benchmark, out_dir):
    from conftest import once, save_artifact

    m = once(benchmark, measure)
    save_artifact(out_dir, "engine_throughput.txt", render(m))
    (out_dir / "BENCH_engine.json").write_text(
        json.dumps(m, indent=2) + "\n", encoding="utf-8"
    )
    failures = check(m)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="engine throughput benchmark")
    parser.add_argument("--budget", type=int, default=_BUDGET)
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write machine-readable results here (the CI artifact)",
    )
    args = parser.parse_args(argv)
    report = measure(args.budget)
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
