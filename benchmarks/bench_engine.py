"""E-ENG: campaign throughput — serial loop vs thread vs process backends.

Replays one fixed program workload (the substrate benchmark generator)
through three engine configurations:

* **serial** — ``backend=serial``, compile cache off, run sharing off:
  the exact cost model of the pre-engine monolithic loop (recompile and
  re-execute every (compiler, level) cell from scratch).
* **thread** — ``backend=thread, jobs=4`` with the content-addressed
  compile cache and identical-binary run sharing on.  Its speedup is
  funded by *dedup* (the GIL serializes the thread workers).
* **process** — ``backend=process, jobs=auto`` with the same caching:
  execute tasks ship to a process pool as picklable kernel specs, adding
  real multi-core parallelism on top of the dedup.

Asserted shape: every configuration produces a byte-identical
CampaignResult; the thread/dedup engine sustains >= 1.6x the serial
programs/sec on any machine; the process backend sustains >= 1.6x serial
on multi-core hardware (on a single core its IPC overhead is reported
but not asserted — there is no parallelism to buy).

The dedup floor was 2x before the vectorization tier: splitting O2/O3
into their own (pipeline, environment) classes (gcc/clang 3 -> 5 level
classes) is *less* redundancy for the cache and run sharing to collapse,
so the structural speedup ceiling dropped with it.  That is a modeling
change, not an engine regression — the measured floor is re-derived
(~2.0x observed on a 1-CPU container; 1.6x leaves headroom for noisy
runners) and the committed baseline regenerated.

An island-model leg (schema 5) tracks the cost of fitness-guided
feedback generation: the llm4fp approach run as an in-process island
campaign (``islands=4``), whose generate stage adds the novelty census,
SUS strategy selection and merge-point migrant exchange on top of plain
mutation.  ``island_throughput`` is warn-only in the regression gate
(absolute wall-clock); the serial/thread bit-identity of the island
campaign *is* asserted — the island model's determinism contract.

Two tape-executor legs ride along (schema 4): the loops campaign re-run
under ``exec_mode=tape`` (its result must be bit-identical — part of the
``identical`` gate), and a batched-execution microbench where every
distinct (optimized kernel, environment) of the workload runs a batch of
input sets in both modes.  ``tape_speedup`` is that microbench's ratio
— the regime the tape compiler targets (ddmin rounds, repeated-input
batches), where one compile amortizes across the batch.  In a plain
campaign each kernel runs once, so there the tape roughly breaks even;
``execute_stage_share`` records how little of campaign wall-clock the
execute stage is (the Amdahl context for any engine-level expectation).

A full-tier leg (schema 7) tracks the divergence-tier registry's
coverage and cost: the loops workload regenerated with the full
profile's tier shares (libm-call, mixed-precision and integer-guarded
loops) through ``default_compilers(tiers="full")``.
``tiers_throughput`` is its absolute cost (warn-only — the full
pipelines carry extra vectorizer work and the vec-libm environments);
``tier_tag_floor`` is the *minimum* count across the three new
structural tags (``vec-libm``, ``mixed-precision``,
``masked-int-guard``) — the benchmark asserts it is nonzero (every new
tier engages), and the regression gate tracks it warn-only so a
generator or policy change that quietly starves a tier is visible.

A corpus-replay leg (schema 6) tracks the cost of the longitudinal
regression prelude: the substrate workload's triggers are ingested into
a scratch :class:`~repro.corpus.TriggerCorpus` and the same campaign is
re-run wrapped in :class:`~repro.corpus.CorpusReplayGenerator`, its
budget widened by the seed count.  ``corpus_replay_overhead`` is the
per-program throughput of the wrapped campaign relative to the bare one
(higher is better; 1.0 = the prelude is free) and is warn-only in the
regression gate; that every replayed seed re-triggers under the same
compiler model *is* asserted — the replay determinism contract.

Run standalone for a report plus machine-readable results::

    python benchmarks/bench_engine.py --json BENCH_engine.json

``scripts/check_bench_regression.py`` compares that JSON against the
committed baseline (``benchmarks/BENCH_engine_baseline.json``) and fails
on >30% throughput regression — the CI gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.experiments.approaches import make_generator
from repro.fp.bits import double_to_hex
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

#: enough programs for a stable ratio, small enough for CI
_BUDGET = 40
_SEED = 20250916

#: loops-workload budget: the vector/masking tier's cost tracker (the
#: loops generator produces reduction and guarded kernels, so compile
#: cost includes if-convert + unroll + widening at every masking level)
_LOOPS_BUDGET = 24

#: engine legs pin ``exec_mode="tree"`` so serial/thread/process keep
#: measuring what they always measured (dedup + scheduling); the tape
#: executor gets its own legs below, where its costs and gains are
#: attributable.
CONFIGS = {
    "serial": EngineConfig(
        backend="serial", jobs=1, compile_cache=False, share_runs=False,
        exec_mode="tree",
    ),
    "thread": EngineConfig(
        backend="thread", jobs=4, compile_cache=True, share_runs=True,
        exec_mode="tree",
    ),
    "process": EngineConfig(
        backend="process", jobs="auto", compile_cache=True, share_runs=True,
        exec_mode="tree",
    ),
}

#: the thread leg re-run with the tape executor (same workload, same
#: dedup): what a default campaign actually runs
TAPE_CONFIG = EngineConfig(
    backend="thread", jobs=4, compile_cache=True, share_runs=True,
    exec_mode="tape",
)

#: island leg: the feedback approach as an in-process island campaign
#: (generation itself partitioned; merge points exchange migrants)
_ISLAND_BUDGET = 24
_ISLANDS = 4
_ISLAND_MERGE_EVERY = 3
ISLAND_CONFIG = EngineConfig(
    backend="thread", jobs=4, compile_cache=True, share_runs=True,
    islands=_ISLANDS, merge_every=_ISLAND_MERGE_EVERY, exec_mode="tree",
)

#: full-tier leg: enough loops programs that every new tier's tag
#: appears (the vec-libm tier only engages at O3_fastmath, where
#: fast-math reassociation suppresses many candidates, so it needs the
#: largest sample)
_TIERS_BUDGET = 60

#: the three structural tags the full profile adds over baseline
_NEW_TIER_TAGS = ("vec-libm", "mixed-precision", "masked-int-guard")

#: input sets per kernel in the batched-execution microbench: the regime
#: the tape compiler exists for (reduction candidate matrices, repeated
#: difftest inputs), where one compile serves the whole batch
_TAPE_BATCH = 8


class _Replay:
    """Replays a pre-generated program list (identical for every config)."""

    name = "replay"

    def __init__(self, programs):
        self._programs = list(programs)
        self._next = 0

    def generate(self):
        program = self._programs[self._next]
        self._next += 1
        return program

    def notify_success(self, program):
        pass


def _workload(budget: int = _BUDGET):
    rng = SplittableRng(_SEED, "bench-engine")
    generator = make_generator("varity", rng)
    return [generator.generate() for _ in range(budget)]


def _loops_workload(budget: int = _LOOPS_BUDGET):
    rng = SplittableRng(_SEED, "bench-engine-loops")
    generator = make_generator("loops", rng)
    return [generator.generate() for _ in range(budget)]


def _tiers_workload(budget: int = _TIERS_BUDGET):
    rng = SplittableRng(_SEED, "bench-engine-tiers")
    generator = make_generator("loops", rng, tiers="full")
    return [generator.generate() for _ in range(budget)]


def _run(programs, engine_config, compilers=None):
    engine = CampaignEngine(
        default_compilers() if compilers is None else compilers,
        CampaignConfig(budget=len(programs)),
        engine_config,
    )
    t0 = time.perf_counter()
    result = engine.run(_Replay(programs))
    seconds = time.perf_counter() - t0
    return result, seconds


def _run_island(engine_config, budget: int = _ISLAND_BUDGET):
    """One island campaign with a *fresh* feedback generator (islands
    partition generation, so the replay trick does not apply)."""
    engine = CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=budget, seed=_SEED),
        engine_config,
    )
    generator = make_generator("llm4fp", SplittableRng(_SEED, "bench-islands"))
    t0 = time.perf_counter()
    result = engine.run(generator)
    return result, time.perf_counter() - t0


def _hex(v):
    return None if v is None else double_to_hex(v)


def _result_key(result):
    return [
        (
            o.index,
            o.compiled,
            o.ran,
            o.signatures,
            {k: _hex(v) for k, v in o.values.items()},
            [
                (c.compiler_a, c.compiler_b, c.level, c.consistent, c.digit_diff)
                for c in o.comparisons
            ],
            o.triggered,
        )
        for o in result.outcomes
    ]


def _tape_microbench(programs, batch: int = _TAPE_BATCH) -> dict:
    """Batched execution, tree vs tape, over the workload's real matrix.

    Every distinct (optimized kernel, environment) of the workload runs
    ``batch`` input sets through :func:`repro.execution.batch.run_batch`
    in both modes — the tape leg pays its compilations cold (the
    per-process cache is cleared first) and amortizes them across the
    batch, exactly as the engine's run groups and the reducer's ddmin
    rounds do.  Results are compared bit-for-bit.
    """
    from repro.difftest.engine import frontend_kernels
    from repro.execution.batch import _tape_cache, result_key, run_batch
    from repro.toolchains.cache import env_fingerprint, kernel_fingerprint
    from repro.toolchains.optlevels import ALL_LEVELS

    units = {}
    for program in programs:
        frontend = frontend_kernels(program.source)
        for compiler in default_compilers():
            kernel = frontend.kernels.get(compiler.kind)
            if kernel is None:
                continue
            for level in ALL_LEVELS:
                binary = compiler.compile_kernel(kernel, level)
                key = (
                    kernel_fingerprint(binary.kernel),
                    env_fingerprint(binary.env),
                )
                units.setdefault(
                    key, (binary.kernel, binary.env, program.inputs)
                )
    tasks = [
        (kernel, env, (inputs,) * batch)
        for kernel, env, inputs in units.values()
    ]
    seconds = {}
    keys = {}
    for mode in ("tree", "tape"):
        _tape_cache.clear()
        t0 = time.perf_counter()
        outs = [
            run_batch(kernel, env, inputs_batch, mode=mode)
            for kernel, env, inputs_batch in tasks
        ]
        seconds[mode] = time.perf_counter() - t0
        keys[mode] = [[result_key(r) for r in out] for out in outs]
    return {
        "units": len(tasks),
        "batch": batch,
        "tree_seconds": seconds["tree"],
        "tape_seconds": seconds["tape"],
        "speedup": seconds["tree"] / seconds["tape"],
        "identical": keys["tree"] == keys["tape"],
    }


def _corpus_replay_bench(programs, baseline_result, baseline_seconds) -> dict:
    """The same campaign re-run behind the corpus regression prelude.

    The baseline campaign's triggers become a scratch corpus; the wrapped
    campaign replays every stored seed first, then the identical program
    stream, so its extra cost is exactly the prelude.  Replayed seeds
    are bit-identical programs under the same compiler model, so each
    one must re-trigger — asserted in :func:`check`.
    """
    import tempfile
    from pathlib import Path

    from repro.corpus import CorpusReplayGenerator, TriggerCorpus

    with tempfile.TemporaryDirectory() as tmp:
        with TriggerCorpus(Path(tmp) / "corpus.jsonl") as corpus:
            corpus.ingest(baseline_result.outcomes, "bench")
        seeds = corpus.seeds()
    budget = len(programs)
    engine = CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=budget + len(seeds)),
        CONFIGS["thread"],
    )
    generator = CorpusReplayGenerator(seeds, _Replay(programs))
    t0 = time.perf_counter()
    result = engine.run(generator)
    seconds = time.perf_counter() - t0
    prelude = result.outcomes[: len(seeds)]
    throughput = (budget + len(seeds)) / seconds
    baseline_throughput = budget / baseline_seconds
    return {
        "seeds": len(seeds),
        "seconds": seconds,
        "throughput": throughput,
        "overhead": throughput / baseline_throughput,
        "retriggered": sum(1 for o in prelude if o.triggered),
    }


def measure(budget: int = _BUDGET, loops_budget: int = _LOOPS_BUDGET) -> dict:
    programs = _workload(budget)
    keys = {}
    configs = {}
    shared = {}
    for name, engine_config in CONFIGS.items():
        result, seconds = _run(programs, engine_config)
        keys[name] = _result_key(result)
        configs[name] = {
            "seconds": seconds,
            "throughput": budget / seconds,
            "jobs": engine_config.resolved_jobs,
        }
        shared[name] = result
    serial_s = configs["serial"]["seconds"]
    # Loops workload (ROADMAP: bench coverage for the vector tier): the
    # same thread/dedup engine over reduction + guarded kernels, whose
    # compile stage runs if-convert/unroll/widening and whose execute
    # stage interprets lane math — a budget-normalized cost tracker that
    # moves when the tier's passes or the interpreter's lane path do.
    loops_programs = _loops_workload(loops_budget)
    loops_result, loops_seconds = _run(loops_programs, CONFIGS["thread"])
    loops_tags = sum(
        1
        for o in loops_result.outcomes
        for c in o.comparisons
        if not c.consistent and c.tag
    )
    # Tape legs: the same loops workload under the default (tape)
    # executor — campaign identity is part of the determinism gate — and
    # the batched microbench where one tape compile serves a whole input
    # batch (the regime the tape executor targets; engine campaigns run
    # each kernel once, so there it roughly breaks even).
    loops_tape_result, loops_tape_seconds = _run(loops_programs, TAPE_CONFIG)
    tape_identical = _result_key(loops_tape_result) == _result_key(loops_result)
    tape = _tape_microbench(programs + loops_programs)
    # Island leg: feedback generation partitioned into islands.  The
    # serial re-run is the determinism witness (same bytes, only
    # wall-clock may differ); throughput is tracked warn-only.
    from dataclasses import replace as _replace

    island_result, island_seconds = _run_island(ISLAND_CONFIG)
    island_serial_result, _ = _run_island(
        _replace(ISLAND_CONFIG, backend="serial", jobs=1)
    )
    island_identical = (
        _result_key(island_result) == _result_key(island_serial_result)
    )
    # Corpus-replay leg: the regression prelude's per-program cost,
    # relative to the bare thread campaign over the same stream.
    corpus_replay = _corpus_replay_bench(
        programs, shared["thread"], configs["thread"]["seconds"]
    )
    # Full-tier leg: the loops generator's tier workloads through the
    # full-profile pipelines and environments.  The floor across the
    # three new tags is the coverage witness: zero means a tier the
    # profile promises never engaged.
    tiers_programs = _tiers_workload()
    tiers_result, tiers_seconds = _run(
        tiers_programs, CONFIGS["thread"], default_compilers(tiers="full")
    )
    tier_tag_counts: dict = {}
    for o in tiers_result.outcomes:
        for c in o.comparisons:
            if not c.consistent and c.tag:
                tier_tag_counts[c.tag] = tier_tag_counts.get(c.tag, 0) + 1
    tier_tag_floor = min(
        tier_tag_counts.get(tag, 0) for tag in _NEW_TIER_TAGS
    )
    stage_seconds = shared["thread"].stage_seconds
    return {
        "schema": 7,
        "budget": budget,
        "cpu_count": os.cpu_count() or 1,
        "configs": configs,
        "thread_speedup": serial_s / configs["thread"]["seconds"],
        "process_speedup": serial_s / configs["process"]["seconds"],
        "identical": (
            all(keys[n] == keys["serial"] for n in CONFIGS) and tape_identical
        ),
        "run_share_rate": shared["thread"].run_share_rate,
        "cache_hit_rate": shared["thread"].cache_hit_rate,
        "stage_seconds": stage_seconds,
        "execute_stage_share": stage_seconds["execute"]
        / max(sum(stage_seconds.values()), 1e-9),
        "loops_budget": loops_budget,
        "loops_throughput": loops_budget / loops_seconds,
        "loops_tape_throughput": loops_budget / loops_tape_seconds,
        "loops_structural_tags": loops_tags,
        "tape_speedup": tape["speedup"],
        "tape_bench": tape,
        "island_budget": _ISLAND_BUDGET,
        "islands": _ISLANDS,
        "island_merge_every": _ISLAND_MERGE_EVERY,
        "island_throughput": _ISLAND_BUDGET / island_seconds,
        "island_identical": island_identical,
        "island_triggers": sum(
            1 for o in island_result.outcomes if o.triggered
        ),
        "corpus_replay_overhead": corpus_replay["overhead"],
        "corpus_replay_bench": corpus_replay,
        "tiers_budget": _TIERS_BUDGET,
        "tiers_throughput": _TIERS_BUDGET / tiers_seconds,
        "tier_tag_counts": dict(sorted(tier_tag_counts.items())),
        "tier_tag_floor": tier_tag_floor,
    }


def render(m: dict) -> str:
    c = m["configs"]
    lines = [
        f"engine throughput (substrate workload, {m['budget']} programs, "
        f"{m['cpu_count']} CPUs)",
        f"  serial   (inline, no cache, no sharing):   "
        f"{c['serial']['throughput']:7.1f} programs/s",
        f"  thread   (jobs=4, cache + sharing):        "
        f"{c['thread']['throughput']:7.1f} programs/s  "
        f"({m['thread_speedup']:.2f}x)",
        f"  process  (jobs={c['process']['jobs']}, cache + sharing):"
        f"        {c['process']['throughput']:7.1f} programs/s  "
        f"({m['process_speedup']:.2f}x)",
        f"  identical results across backends: {m['identical']}",
        f"  run share rate: {m['run_share_rate'] * 100:.1f}%"
        f"   cache hit rate: {m['cache_hit_rate'] * 100:.1f}%",
        "  thread stage seconds:   "
        + "  ".join(f"{k}={v:.2f}" for k, v in m["stage_seconds"].items()),
        f"  loops workload ({m['loops_budget']} programs, vector+mask tier): "
        f"{m['loops_throughput']:7.1f} programs/s, "
        f"{m['loops_structural_tags']} structural tags "
        f"(tape executor: {m['loops_tape_throughput']:.1f} programs/s)",
        f"  execute stage share of thread campaign: "
        f"{m['execute_stage_share'] * 100:.1f}%",
        f"  island campaign ({m['island_budget']} programs, "
        f"{m['islands']} islands, merge every {m['island_merge_every']}): "
        f"{m['island_throughput']:7.1f} programs/s, "
        f"{m['island_triggers']} triggers "
        f"(serial/thread identical: {m['island_identical']})",
        f"  tape batched execution ({m['tape_bench']['units']} kernels x "
        f"{m['tape_bench']['batch']} inputs): "
        f"tree {m['tape_bench']['tree_seconds']:.2f}s -> "
        f"tape {m['tape_bench']['tape_seconds']:.2f}s  "
        f"({m['tape_speedup']:.2f}x, identical: {m['tape_bench']['identical']})",
        f"  corpus replay prelude ({m['corpus_replay_bench']['seeds']} seeds): "
        f"{m['corpus_replay_bench']['throughput']:7.1f} programs/s  "
        f"({m['corpus_replay_overhead']:.2f}x of bare campaign, "
        f"{m['corpus_replay_bench']['retriggered']} re-triggered)",
        f"  full tier profile ({m['tiers_budget']} programs): "
        f"{m['tiers_throughput']:7.1f} programs/s, tags "
        + " ".join(f"{k}={v}" for k, v in m["tier_tag_counts"].items())
        + f" (new-tag floor: {m['tier_tag_floor']})",
    ]
    return "\n".join(lines)


def check(m: dict) -> list[str]:
    """The acceptance assertions; returns human-readable failures."""
    failures = []
    if not m["identical"]:
        failures.append("serial/thread/process results differ (determinism broken)")
    if m["thread_speedup"] < 1.6:
        failures.append(
            f"thread/dedup speedup {m['thread_speedup']:.2f}x < 1.6x over serial"
        )
    if m["run_share_rate"] < 0.5:
        failures.append(
            f"run share rate {m['run_share_rate'] * 100:.1f}% < 50%"
        )
    if m["cpu_count"] >= 2 and m["process_speedup"] < 1.6:
        failures.append(
            f"process speedup {m['process_speedup']:.2f}x < 1.6x over serial "
            f"on a {m['cpu_count']}-CPU machine"
        )
    if m["loops_structural_tags"] < 1:
        failures.append(
            "loops workload produced no structural (vector/masked) tags — "
            "the tier the benchmark exists to cover did not engage"
        )
    if not m["island_identical"]:
        failures.append(
            "island campaign differs between serial and thread backends "
            "(island determinism contract broken)"
        )
    if not m["tape_bench"]["identical"]:
        failures.append(
            "tape executor results differ from the tree interpreter "
            "(bit-identity broken)"
        )
    if m["tape_speedup"] < 2.5:
        failures.append(
            f"tape batched-execution speedup {m['tape_speedup']:.2f}x < 2.5x "
            "over the tree interpreter"
        )
    if m["tier_tag_floor"] < 1:
        missing = [
            tag
            for tag in _NEW_TIER_TAGS
            if m["tier_tag_counts"].get(tag, 0) < 1
        ]
        failures.append(
            "full tier profile reported zero "
            + "/".join(missing)
            + " tags — a tier the profile promises never engaged"
        )
    replay = m["corpus_replay_bench"]
    if replay["retriggered"] != replay["seeds"]:
        failures.append(
            f"only {replay['retriggered']}/{replay['seeds']} corpus seeds "
            "re-triggered under the same compiler model "
            "(replay determinism contract broken)"
        )
    return failures


def bench_engine_throughput(benchmark, out_dir):
    from conftest import once, save_artifact

    m = once(benchmark, measure)
    save_artifact(out_dir, "engine_throughput.txt", render(m))
    (out_dir / "BENCH_engine.json").write_text(
        json.dumps(m, indent=2) + "\n", encoding="utf-8"
    )
    failures = check(m)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="engine throughput benchmark")
    parser.add_argument("--budget", type=int, default=_BUDGET)
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write machine-readable results here (the CI artifact)",
    )
    args = parser.parse_args(argv)
    report = measure(args.budget)
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
