"""E-ENG: campaign throughput — serial legacy loop vs the staged engine.

Replays one fixed program workload (the substrate benchmark generator)
through two engine configurations:

* **serial** — ``jobs=1``, compile cache off, run sharing off: the exact
  cost model of the pre-engine monolithic loop (recompile and re-execute
  every (compiler, level) cell from scratch).
* **engine** — ``jobs=4`` with the content-addressed compile cache and
  identical-binary run sharing on.

Asserted shape: the full engine sustains >= 2x the serial programs/sec on
this workload, and the two CampaignResults are byte-identical.  The
speedup is funded by provable deduplication (levels with identical
pipelines compile once; binaries with content-identical optimized kernel
and FP environment execute once), never by changing what is computed —
the thread fan-out itself adds no CPU parallelism under CPython's GIL.

Run standalone for a quick report::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

from __future__ import annotations

import time

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.experiments.approaches import make_generator
from repro.fp.bits import double_to_hex
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

#: enough programs for a stable ratio, small enough for CI
_BUDGET = 40
_SEED = 20250916

SERIAL = EngineConfig(jobs=1, compile_cache=False, share_runs=False)
ENGINE = EngineConfig(jobs=4, compile_cache=True, share_runs=True)


class _Replay:
    """Replays a pre-generated program list (identical for every config)."""

    name = "replay"

    def __init__(self, programs):
        self._programs = list(programs)
        self._next = 0

    def generate(self):
        program = self._programs[self._next]
        self._next += 1
        return program

    def notify_success(self, program):
        pass


def _workload(budget: int = _BUDGET):
    rng = SplittableRng(_SEED, "bench-engine")
    generator = make_generator("varity", rng)
    return [generator.generate() for _ in range(budget)]


def _run(programs, engine_config):
    engine = CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=len(programs)),
        engine_config,
    )
    t0 = time.perf_counter()
    result = engine.run(_Replay(programs))
    seconds = time.perf_counter() - t0
    return result, seconds


def _hex(v):
    return None if v is None else double_to_hex(v)


def _result_key(result):
    return [
        (
            o.index,
            o.compiled,
            o.ran,
            o.signatures,
            {k: _hex(v) for k, v in o.values.items()},
            [
                (c.compiler_a, c.compiler_b, c.level, c.consistent, c.digit_diff)
                for c in o.comparisons
            ],
            o.triggered,
        )
        for o in result.outcomes
    ]


def measure(budget: int = _BUDGET) -> dict:
    programs = _workload(budget)
    serial_result, serial_s = _run(programs, SERIAL)
    engine_result, engine_s = _run(programs, ENGINE)
    return {
        "budget": budget,
        "serial_seconds": serial_s,
        "engine_seconds": engine_s,
        "serial_throughput": budget / serial_s,
        "engine_throughput": budget / engine_s,
        "speedup": serial_s / engine_s,
        "identical": _result_key(serial_result) == _result_key(engine_result),
        "run_share_rate": engine_result.run_share_rate,
        "cache_hit_rate": engine_result.cache_hit_rate,
        "stage_seconds": engine_result.stage_seconds,
    }


def render(m: dict) -> str:
    lines = [
        f"engine throughput (substrate workload, {m['budget']} programs)",
        f"  serial   (jobs=1, no cache, no sharing): "
        f"{m['serial_throughput']:7.1f} programs/s",
        f"  engine   (jobs=4, cache + sharing):      "
        f"{m['engine_throughput']:7.1f} programs/s",
        f"  speedup: {m['speedup']:.2f}x   identical results: {m['identical']}",
        f"  run share rate: {m['run_share_rate'] * 100:.1f}%"
        f"   cache hit rate: {m['cache_hit_rate'] * 100:.1f}%",
        "  engine stage seconds:   "
        + "  ".join(f"{k}={v:.2f}" for k, v in m["stage_seconds"].items()),
    ]
    return "\n".join(lines)


def bench_engine_throughput(benchmark, out_dir):
    from conftest import once, save_artifact

    m = once(benchmark, measure)
    save_artifact(out_dir, "engine_throughput.txt", render(m))

    # Acceptance: >= 2x throughput, byte-identical outputs.
    assert m["identical"]
    assert m["speedup"] >= 2.0
    # the dedup that funds the speedup
    assert m["run_share_rate"] >= 0.5


if __name__ == "__main__":
    report = measure()
    print(render(report))
    if not report["identical"]:
        raise SystemExit("FAIL: serial and engine results differ")
    if report["speedup"] < 2.0:
        raise SystemExit(f"FAIL: speedup {report['speedup']:.2f}x < 2x")
