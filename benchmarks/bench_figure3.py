"""E-F3: regenerate Figure 3 — inconsistency kinds, Varity vs LLM4FP.

Paper shape: 98.48% of LLM4FP's inconsistencies are {Real, Real} (~13x
Varity's count of that kind), while Varity's distribution is spread across
extreme-value kinds (NaN / infinities).
"""

from __future__ import annotations

from conftest import once, save_artifact

from repro.experiments import figure3


def _shares(series: dict[str, int]) -> tuple[float, float]:
    """(share of {Real, Real}, share of extreme-value kinds)."""
    total = sum(series.values()) or 1
    real_real = series.get("{Real, Real}", 0)
    extreme = sum(
        n
        for label, n in series.items()
        if any(tag in label for tag in ("NaN", "Inf"))
    )
    return real_real / total, extreme / total


def bench_figure3(benchmark, ctx, out_dir):
    series = once(benchmark, lambda: figure3.compute(ctx))
    save_artifact(out_dir, "figure3.txt", figure3.render(series, ctx.settings.budget))

    llm_real, llm_extreme = _shares(series["llm4fp"])
    var_real, var_extreme = _shares(series["varity"])

    # LLM4FP: overwhelmingly {Real, Real} (paper: 98.48%).
    assert llm_real >= 0.90
    # LLM4FP finds many more {Real, Real} inconsistencies than Varity
    # (paper: ~13x).
    assert series["llm4fp"]["{Real, Real}"] >= 3 * max(
        1, series["varity"]["{Real, Real}"]
    )
    # Varity's mix is far heavier in extreme-value kinds than LLM4FP's.
    assert var_extreme > llm_extreme
