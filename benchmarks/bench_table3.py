"""E-T3: regenerate Table 3 — LLM4FP inconsistency kinds per level.

Paper shape: {Real, Real} appears at *every* optimization level with
comparable counts (relatively stable); O3_fastmath contributes the most
inconsistencies; extreme-value kinds are rare and concentrated in
O3_fastmath.
"""

from __future__ import annotations

from conftest import once, save_artifact

from repro.experiments import table3
from repro.fp.classify import FPClass
from repro.toolchains.optlevels import OptLevel


def bench_table3(benchmark, ctx, out_dir):
    by_level = once(benchmark, lambda: table3.compute(ctx))
    save_artifact(out_dir, "table3.txt", table3.render(by_level, ctx.settings.budget))

    real_real = {
        level: kc.get(FPClass.REAL, FPClass.REAL) for level, kc in by_level.items()
    }
    totals = {level: kc.total for level, kc in by_level.items()}

    # {Real, Real} is observed at every level.
    assert all(n > 0 for n in real_real.values()), real_real

    # O3_fastmath contributes the most inconsistencies.
    fastmath = totals[OptLevel.O3_FASTMATH]
    assert fastmath == max(totals.values())

    # Extreme-value kinds concentrate in O3_fastmath: levels below it are
    # (almost) purely {Real, Real}.
    for level, kc in by_level.items():
        if level is OptLevel.O3_FASTMATH:
            continue
        extreme = kc.total - kc.get(FPClass.REAL, FPClass.REAL) - kc.get(
            FPClass.REAL, FPClass.ZERO
        )
        assert extreme <= max(2, 0.05 * kc.total), (level, dict(kc.counts))
