"""Micro-benchmarks of the substrates under every experiment.

These are proper statistical benchmarks (pytest-benchmark rounds): the
per-program compile+execute cost per simulated compiler, the exact-FMA
primitive, the libm models, and the diversity metrics.  They bound the
campaign throughput reported next to Table 2's time-cost column.
"""

from __future__ import annotations

import pytest

from repro.fp.fma import fma
from repro.fp.mathlib import CudaLibm, HostLibm
from repro.metrics.clones import detect_clones
from repro.metrics.codebleu import codebleu
from repro.toolchains import ClangCompiler, GccCompiler, NvccCompiler, OptLevel

_SOURCE = """
#include <stdio.h>
#include <math.h>
void compute(double a, double b, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += sin(a + i) * b - a * b + 0.125;
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""

_INPUTS = (0.37, 1.91, 23)

_OTHER = _SOURCE.replace("sin", "cos").replace("0.125", "0.5")


@pytest.mark.parametrize(
    "compiler", [GccCompiler(), ClangCompiler(), NvccCompiler()], ids=lambda c: c.name
)
def bench_compile_and_run(benchmark, compiler):
    def pipeline():
        binary = compiler.compile_source(_SOURCE, OptLevel.O3)
        return binary.run(_INPUTS).signature()

    sig = benchmark(pipeline)
    assert sig is not None


def bench_compile_all_levels(benchmark):
    gcc = GccCompiler()

    def pipeline():
        return [
            gcc.compile_source(_SOURCE, level).run(_INPUTS).ok
            for level in OptLevel
        ]

    assert all(benchmark(pipeline))


def bench_fma_exact(benchmark):
    result = benchmark(fma, 1.0 + 2.0**-30, 1.0 - 2.0**-29, -1.0)
    assert result != 0.0


def bench_host_libm(benchmark):
    libm = HostLibm()
    benchmark(libm.call, "sin", (0.7391,))


def bench_cuda_libm(benchmark):
    libm = CudaLibm()
    benchmark(libm.call, "sin", (0.7391,))


def bench_codebleu_pair(benchmark):
    score = benchmark(codebleu, _SOURCE, _OTHER)
    assert 0.0 < score.score < 1.0


def bench_clone_detection(benchmark):
    corpus = [_SOURCE, _OTHER] * 10
    report = benchmark(detect_clones, corpus)
    assert report.count is not None
