"""E-A1: ablation of the grammar/mutation strategy split (§3.1.4).

The paper fixes the mix at 0.3 grammar / 0.7 mutation.  Sweeping the
mutation probability shows the feedback loop's value: rate at p=0 (pure
grammar regeneration) is the Grammar-Guided floor, and rates improve as
mutation reuses successful programs.
"""

from __future__ import annotations

from conftest import campaign_budget, once, save_artifact

from repro.experiments.ablation import render_mix, sweep_mutation_prob
from repro.experiments.settings import ExperimentSettings

_PROBS = (0.0, 0.5, 0.9)


def bench_ablation_mix(benchmark, out_dir):
    settings = ExperimentSettings(budget=campaign_budget())
    points = once(benchmark, lambda: sweep_mutation_prob(settings, _PROBS))
    save_artifact(out_dir, "ablation_mix.txt", render_mix(points))

    by_prob = {pt.mutation_prob: pt.inconsistency_rate for pt in points}
    # Mutation reuse beats pure grammar regeneration.
    assert max(by_prob[0.5], by_prob[0.9]) > by_prob[0.0]
