"""E-A2: ablation of the sampling hyperparameters (§3.1.4).

The paper uses temperature 1.2 with frequency penalty 0.5 and presence
penalty 0.6, citing Arora et al. for the diversity effect.  The sweep
checks the mechanism in the SimLLM: low temperature with no penalties
yields a more repetitive corpus (higher CodeBLEU) than the paper's config.
"""

from __future__ import annotations

from conftest import campaign_budget, once, save_artifact

from repro.experiments.ablation import render_sampling, sweep_sampling
from repro.experiments.settings import ExperimentSettings
from repro.generation.llm.base import GenerationConfig

_CONFIGS = (
    GenerationConfig(temperature=0.3, frequency_penalty=0.0, presence_penalty=0.0),
    GenerationConfig(temperature=1.2, frequency_penalty=0.5, presence_penalty=0.6),
)


def bench_ablation_sampling(benchmark, out_dir):
    settings = ExperimentSettings(budget=campaign_budget())
    rows = once(benchmark, lambda: sweep_sampling(settings, _CONFIGS))
    save_artifact(out_dir, "ablation_sampling.txt", render_sampling(rows))

    cold = next(r for r in rows if r["temperature"] == 0.3)
    paper = next(r for r in rows if r["temperature"] == 1.2)
    # The paper's sampling config produces the more diverse corpus.
    assert paper["codebleu"] < cold["codebleu"]
