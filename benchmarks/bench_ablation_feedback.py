"""E-A3: ablation of the feedback loop (§2.3.2).

LLM4FP with feedback disabled degenerates to Grammar-Guided; the rate gap
is the loop's contribution (paper Table 2: 29.33% vs 16.47%).
"""

from __future__ import annotations

from conftest import campaign_budget, once, save_artifact

from repro.experiments.ablation import feedback_contribution, render_feedback
from repro.experiments.settings import ExperimentSettings


def bench_ablation_feedback(benchmark, out_dir):
    settings = ExperimentSettings(budget=campaign_budget())
    result = once(benchmark, lambda: feedback_contribution(settings))
    save_artifact(out_dir, "ablation_feedback.txt", render_feedback(result))

    assert result["gain"] > 0, result
