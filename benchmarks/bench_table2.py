"""E-T2: regenerate Table 2 — the four approaches compared.

Paper shape (Table 2, N=1000):

* inconsistency rate ascends Varity < Direct-Prompt < Grammar-Guided <
  LLM4FP, with LLM4FP roughly 2.5x Varity (29.33% vs 11.93%);
* CodeBLEU (lower = more diverse): LLM4FP clearly lowest (0.2788 vs
  0.3442-0.3581 for the rest);
* no Type-1/2/2c clones for any approach.
"""

from __future__ import annotations

from conftest import once, save_artifact

from repro.experiments import table2


def bench_table2(benchmark, ctx, out_dir):
    rows = once(benchmark, lambda: table2.compute(ctx))
    save_artifact(out_dir, "table2.txt", table2.render(rows, ctx.settings.budget))

    by = {r.approach: r for r in rows}
    varity = by["varity"]
    llm4fp = by["llm4fp"]

    # Rate ordering: LLM4FP on top, Varity at the bottom, by a wide margin.
    assert llm4fp.inconsistency_rate == max(r.inconsistency_rate for r in rows)
    assert varity.inconsistency_rate == min(r.inconsistency_rate for r in rows)
    assert llm4fp.inconsistency_rate >= 1.8 * varity.inconsistency_rate

    # LLM4FP is the most diverse corpus (lowest pairwise CodeBLEU).
    assert llm4fp.codebleu == min(r.codebleu for r in rows)

    # §3.2.3: no Type-1/2/2c clones anywhere.
    assert all(r.clone_free for r in rows)
