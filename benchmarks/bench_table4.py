"""E-T4: regenerate Table 4 — rates and digit differences per compiler pair.

Paper shape:

* host-device pairs (gcc,nvcc / clang,nvcc) have far higher total rates
  than the host-host pair (gcc,clang) for both approaches;
* O3_fastmath is each pair's worst level;
* LLM4FP triggers host-device inconsistencies broadly across *all* levels
  (~2% per level), where Varity's non-fastmath levels stay below 1%;
* LLM4FP's average digit differences are small (subtle divergence) —
  lower than Varity's on host-device pairs.
"""

from __future__ import annotations

from conftest import once, save_artifact

from repro.experiments import table4
from repro.toolchains.optlevels import ALL_LEVELS, OptLevel


def _total_rate(cells, pair) -> float:
    return sum(c.rate for c in cells[pair].values())


def bench_table4(benchmark, ctx, out_dir):
    data = once(benchmark, lambda: table4.compute(ctx))
    save_artifact(out_dir, "table4.txt", table4.render(data, ctx.settings.budget))

    for approach, cells in data.items():
        host_host = _total_rate(cells, ("gcc", "clang"))
        gcc_nvcc = _total_rate(cells, ("gcc", "nvcc"))
        clang_nvcc = _total_rate(cells, ("clang", "nvcc"))
        # Host-device dominates host-host.
        assert gcc_nvcc > host_host, approach
        assert clang_nvcc > host_host, approach

    # LLM4FP keeps finding host-device inconsistencies at every level.
    llm_cells = data["llm4fp"]
    for level in ALL_LEVELS:
        assert llm_cells[("gcc", "nvcc")][level].inconsistencies > 0, level

    # Varity's host-host inconsistencies essentially need fast math.
    var_hh = data["varity"][("gcc", "clang")]
    fastmath_count = var_hh[OptLevel.O3_FASTMATH].inconsistencies
    below = sum(
        var_hh[lvl].inconsistencies
        for lvl in ALL_LEVELS
        if lvl is not OptLevel.O3_FASTMATH
    )
    assert fastmath_count >= below

    # Subtlety: LLM4FP's average digit difference on host-device pairs is
    # smaller than Varity's (paper: ~1-3 digits vs ~4-8).
    def avg_digits(cells, pair) -> float:
        stats = [c.digits for c in cells[pair].values() if c.digits.count > 0]
        if not stats:
            return 0.0
        return sum(s.avg * s.count for s in stats) / sum(s.count for s in stats)

    assert avg_digits(llm_cells, ("gcc", "nvcc")) < avg_digits(
        data["varity"], ("gcc", "nvcc")
    )
